//! Regenerates the paper's evaluation tables and figures (DESIGN.md E1–E9).
//!
//! Usage: `eval [derive|fig3|generic-vs-specialized|precision|timing|modes|
//! scaling|specs|interproc|all]` (default `all`).

use std::collections::BTreeMap;
use std::env;

use canvas_bench::{
    derivation_table, fmt_duration, precision_table, render_derive, render_fig3, scaling_blocks,
    scaling_vars, PrecisionCell, FIG3,
};
use canvas_core::{Certifier, Engine};

fn main() {
    let what = env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match what.as_str() {
        "derive" => table_derive(),
        "fig3" => table_fig3(),
        "fig6" => figure_fig6(),
        "fig7" => figure_fig7(),
        "fig8" => figure_fig8(),
        "generic-vs-specialized" => table_generic_vs_specialized(),
        "precision" => table_precision(),
        "timing" => table_timing(),
        "modes" => table_modes(),
        "scaling" => figure_scaling(),
        "specs" => table_specs(),
        "interproc" => table_interproc(),
        "all" => {
            table_derive();
            table_fig3();
            figure_fig6();
            figure_fig7();
            figure_fig8();
            table_generic_vs_specialized();
            table_precision();
            table_timing();
            table_modes();
            figure_scaling();
            table_specs();
            table_interproc();
        }
        other => {
            eprintln!("unknown table {other:?}");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!();
    println!("== {title} ==");
    println!();
}

/// E1: the derived abstraction for CMP (paper Figs. 4–5).
fn table_derive() {
    print!("{}", render_derive());
}

/// E2: the Fig. 3 walkthrough.
fn table_fig3() {
    print!("{}", render_fig3());
}

/// The paper's Fig. 6: the transformed boolean client program for Fig. 3.
fn figure_fig6() {
    header("Fig. 6: the transformed (boolean) client program for Fig. 3");
    let spec = canvas_easl::builtin::cmp();
    let derived = canvas_wp::derive_abstraction(&spec).expect("cmp derives");
    let program = canvas_minijava::Program::parse(FIG3, &spec).expect("fig3 parses");
    let main = program.main_method().expect("main");
    let bp = canvas_abstraction::transform_method(
        &program,
        main,
        &spec,
        &derived,
        canvas_abstraction::EntryAssumption::Clean,
    );
    print!("{}", bp.dump(&program, &derived));
}

/// The paper's Fig. 7: storage shape graphs before/after `i1.remove()`
/// under the *generic* translation — the two version objects merge.
fn figure_fig7() {
    header("Fig. 7: generic shape graphs around i1.remove() (version objects merge)");
    let spec = canvas_easl::builtin::cmp();
    let program = canvas_minijava::Program::parse(FIG3, &spec).expect("fig3 parses");
    let main = program.main_method().expect("main");
    let tvp = canvas_tvla::translate_generic(&program, main, &spec);
    let (_, states) = canvas_tvla::run_collect(&tvp, canvas_tvla::EngineMode::Relational, 50_000);
    // locate the remove edge in the IR (same node ids as the TVP prefix)
    let (before, after) = remove_nodes(&program);
    println!("before i1.remove() ({} structure(s)):", states[before].len());
    for s in &states[before] {
        print!("{}", canvas_tvla::render_structure(s, &tvp.preds));
        println!("  --");
    }
    println!("after i1.remove() ({} structure(s)):", states[after].len());
    for s in &states[after] {
        print!("{}", canvas_tvla::render_structure(s, &tvp.preds));
        println!("  --");
    }
}

/// The paper's Fig. 8: the nullary abstract state before/after
/// `i1.remove()` under the *specialized* certifier.
fn figure_fig8() {
    header("Fig. 8: specialized abstract state around i1.remove()");
    let spec = canvas_easl::builtin::cmp();
    let derived = canvas_wp::derive_abstraction(&spec).expect("cmp derives");
    let program = canvas_minijava::Program::parse(FIG3, &spec).expect("fig3 parses");
    let main = program.main_method().expect("main");
    let bp = canvas_abstraction::transform_method(
        &program,
        main,
        &spec,
        &derived,
        canvas_abstraction::EntryAssumption::Clean,
    );
    let rel = canvas_dataflow::relational::analyze(&bp, 1 << 14).expect("fig3 is tiny");
    let (before, after) = remove_nodes(&program);
    for (label, node) in [("before", before), ("after", after)] {
        println!("{label} i1.remove():");
        for val in &rel.states[node] {
            let mut parts = Vec::new();
            for k in 0..bp.preds.len() {
                parts.push(format!(
                    "{}={}",
                    bp.pred_name(k, &program, &derived),
                    u8::from(val.get(k))
                ));
            }
            println!("  {}", parts.join("  "));
        }
    }
}

/// The CFG nodes immediately before and after the `i1.remove()` call.
fn remove_nodes(program: &canvas_minijava::Program) -> (usize, usize) {
    let main = program.main_method().expect("main");
    for e in main.cfg.edges() {
        if let canvas_minijava::Instr::CallComponent { method, at, .. } = &e.instr {
            if method == "remove" && at.what.starts_with("i1") {
                return (e.from.0, e.to.0);
            }
        }
    }
    unreachable!("fig3 contains i1.remove()")
}

/// E3: generic vs specialized on the two killer examples.
fn table_generic_vs_specialized() {
    header("E3: generic baselines vs the specialized certifier (§3, §4.4)");
    let c = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    let loop_src = r#"
class Main {
    static void main() {
        Set s = new Set();
        while (true) {
            s.add("x");
            for (Iterator i = s.iterator(); i.hasNext(); ) { i.next(); }
        }
    }
}
"#;
    println!("version-loop (safe):");
    for engine in [Engine::ScmpFds, Engine::GenericAllocSite, Engine::GenericSsgRelational] {
        let r = c.certify_source(loop_src, engine).expect("runs");
        println!("  {:<26} -> {} false alarm(s)", engine.to_string(), r.violations.len());
    }
    println!("fig3 line 11 (safe use of i3):");
    for engine in [Engine::ScmpFds, Engine::GenericAllocSite, Engine::GenericSsgRelational] {
        let r = c.certify_source(FIG3, engine).expect("runs");
        let fa = r.lines().contains(&11);
        println!("  {:<26} -> {}", engine.to_string(), if fa { "FALSE ALARM" } else { "exact" });
    }
}

fn cells_by_engine(cells: &[PrecisionCell]) -> BTreeMap<String, Vec<&PrecisionCell>> {
    let mut out: BTreeMap<String, Vec<&PrecisionCell>> = BTreeMap::new();
    for c in cells {
        out.entry(c.engine.to_string()).or_default().push(c);
    }
    out
}

/// E4: the precision table.
fn table_precision() {
    header("E4: precision per benchmark x engine (reported / real / false alarms)");
    let cells = precision_table();
    // wide table: benchmarks as rows, engines as columns (abbreviated)
    let engines: Vec<Engine> = Engine::all();
    print!("{:<20} {:>5}", "benchmark", "real");
    for e in &engines {
        print!(" {:>12}", e.abbrev());
    }
    println!();
    let mut names: Vec<&'static str> = cells.iter().map(|c| c.benchmark).collect();
    names.dedup();
    for name in names {
        let real = cells.iter().find(|c| c.benchmark == name).map(|c| c.real).unwrap_or_default();
        print!("{name:<20} {real:>5}");
        for e in &engines {
            let cell = cells
                .iter()
                .find(|c| c.benchmark == name && c.engine == *e)
                .expect("every cell present");
            let s = match &cell.failed {
                Some(_) => "budget".to_string(),
                None => format!("{}+{}fa", cell.reported - cell.false_alarms, cell.false_alarms),
            };
            print!(" {s:>12}");
        }
        println!();
    }
    // summary
    println!();
    for (engine, cs) in cells_by_engine(&cells) {
        let ok: Vec<_> = cs.iter().filter(|c| c.failed.is_none()).collect();
        let fa: usize = ok.iter().map(|c| c.false_alarms).sum();
        let missed: usize = ok.iter().map(|c| c.missed).sum();
        let failed = cs.len() - ok.len();
        println!(
            "{engine:<26} false alarms: {fa:>3}   missed: {missed:>2}   budget failures: {failed}"
        );
    }
}

/// E5: the timing table.
fn table_timing() {
    header("E5: analysis time per benchmark x engine");
    let cells = precision_table();
    let engines: Vec<Engine> = Engine::all();
    print!("{:<20}", "benchmark");
    for e in &engines {
        print!(" {:>10}", e.abbrev());
    }
    println!();
    let mut names: Vec<&'static str> = cells.iter().map(|c| c.benchmark).collect();
    names.dedup();
    for name in names {
        print!("{name:<20}");
        for e in &engines {
            let cell = cells
                .iter()
                .find(|c| c.benchmark == name && c.engine == *e)
                .expect("every cell present");
            let s = match &cell.failed {
                Some(_) => "-".to_string(),
                None => fmt_duration(cell.time),
            };
            print!(" {s:>10}");
        }
        println!();
    }
}

/// E6: relational vs independent-attribute TVLA (the §7 observation).
fn table_modes() {
    header("E6: TVLA relational vs independent-attribute (same precision per §7)");
    let cells = precision_table();
    let mut names: Vec<&'static str> = cells.iter().map(|c| c.benchmark).collect();
    names.dedup();
    let mut diff = 0;
    for name in names {
        let rel = cells
            .iter()
            .find(|c| c.benchmark == name && c.engine == Engine::TvlaRelational)
            .expect("cell");
        let ind = cells
            .iter()
            .find(|c| c.benchmark == name && c.engine == Engine::TvlaIndependent)
            .expect("cell");
        let same = rel.reported == ind.reported && rel.false_alarms == ind.false_alarms;
        if !same {
            diff += 1;
        }
        println!(
            "{name:<20} relational {} ({}fa, {})  independent {} ({}fa, {})  {}",
            rel.reported,
            rel.false_alarms,
            fmt_duration(rel.time),
            ind.reported,
            ind.false_alarms,
            fmt_duration(ind.time),
            if same { "same" } else { "DIFFER" }
        );
    }
    println!("\nbenchmarks where the modes differ in precision: {diff}");
}

/// E7: the scaling figure (printed series).
fn figure_scaling() {
    header("E7: FDS certifier scaling (polynomial in E and B)");
    println!("sweep client size (blocks of sets+iterators):");
    println!("{:>8} {:>8} {:>8} {:>10} {:>10}", "blocks", "edges", "preds", "work", "time");
    for p in scaling_blocks(&[2, 4, 8, 16, 32, 64, 128]) {
        println!(
            "{:>8} {:>8} {:>8} {:>10} {:>10}",
            p.param,
            p.edges,
            p.predicates,
            p.work,
            fmt_duration(p.time)
        );
    }
    println!("\nsweep component variables (iterator ring; preds grow ~B^2):");
    println!("{:>8} {:>8} {:>8} {:>10} {:>10}", "vars", "edges", "preds", "work", "time");
    for p in scaling_vars(&[2, 4, 8, 16, 32, 64]) {
        println!(
            "{:>8} {:>8} {:>8} {:>10} {:>10}",
            p.param,
            p.edges,
            p.predicates,
            p.work,
            fmt_duration(p.time)
        );
    }
}

/// E8: derivation convergence and the mutation-restricted class.
fn table_specs() {
    header("E8: spec classification and derivation convergence (§6)");
    for row in derivation_table() {
        println!(
            "{:<4} {:?}: {} families, converged (rounds: {:?})",
            row.spec,
            row.class,
            row.families.len(),
            row.rounds
        );
    }
    let unbounded = canvas_easl::builtin::unbounded();
    println!(
        "unbounded (adversarial) {:?}: derivation -> {}",
        canvas_easl::classify(&unbounded),
        match canvas_wp::derive_with_budget(&unbounded, 8) {
            Ok(_) => "converged (unexpected!)".to_string(),
            Err(e) => format!("{e}"),
        }
    );
}

/// E9: interprocedural certification.
fn table_interproc() {
    header("E9: context-sensitive interprocedural SCMP (§8)");
    let cells = precision_table();
    for name in [
        "make-worklist",
        "interproc-grow",
        "interproc-other-set",
        "interproc-returned",
        "app-cache",
    ] {
        for engine in [Engine::ScmpFds, Engine::ScmpInterproc] {
            if let Some(cell) = cells.iter().find(|c| c.benchmark == name && c.engine == engine) {
                println!(
                    "{name:<22} {:<16} real {}  reported {}  false alarms {}",
                    engine.to_string(),
                    cell.real,
                    cell.reported,
                    cell.false_alarms
                );
            }
        }
    }
    println!("\n(the intraprocedural engine is sound but must havoc across calls;");
    println!(" the §8 engine removes exactly those false alarms)");
}
