//! Regenerates the paper's evaluation tables and figures (DESIGN.md E1–E11).
//!
//! ```text
//! eval [TABLE] [--explain] [--trace-out PATH] [--log-json PATH] [--metrics]
//!      [--metrics-json [PATH]] [--check-baseline PATH]
//!      [--max-steps N] [--deadline-ms N]
//! eval compare A.json B.json
//! eval trace-check PATH
//! eval oracle
//! eval fixpoint [--json PATH] [--check-baseline PATH]
//! eval fleet [--json PATH] [--check-baseline PATH]
//! eval obs [--json PATH] [--gate]
//! eval overload [--json PATH] [--gate]
//! eval log-check FILE
//! ```
//!
//! `TABLE` is one of `derive|fig3|fig3-metrics|fig6|fig7|fig8|
//! generic-vs-specialized|precision|timing|modes|scaling|specs|interproc|
//! incr|certs|all` (default `all`). `incr` is the warm-vs-cold benchmark:
//! each engine certifies the E10 workload cold, warm (identical rerun), and
//! after a one-line single-method edit, through the content-addressed
//! certificate cache, reporting hit/miss counts and the wall-clock speedup.
//! `certs` is E11: every corpus benchmark's proof-carrying certificate is
//! emitted (full fixpoint) and re-checked (one `canvas-check` replay pass),
//! reporting both times and the certificate size.
//!
//! `--metrics` prints a telemetry summary after the run. `--metrics-json`
//! runs the full evaluation with telemetry on and writes the stable
//! `canvas-bench-eval/2` document (default path `BENCH_eval.json`);
//! `--check-baseline` compares the run's deterministic section against a
//! committed baseline and exits 1 on drift. `compare` diffs the
//! deterministic sections of two emitted documents (the CI determinism
//! check runs the evaluation twice and compares).
//!
//! `--explain` switches the `fig3` table to the witness-trace rendering
//! (rustc-style labeled diagnostics). `--trace-out` collects structured
//! trace events during the run and writes them as Chrome Trace Format JSON;
//! `trace-check` validates such a file (valid JSON, >0 events) — CI runs it
//! against the bench-smoke artifact. `--log-json` streams the structured
//! `canvas-log/1` event log to a file at `info` level; `log-check`
//! validates such a file (schema fields, `(ts_ns, seq)` emit order).
//! `obs` is E13: telemetry overhead (disabled/enabled/scoped) and
//! log₂-histogram quantile fidelity, with `--gate` enforcing the overhead
//! ceilings and the factor-2 quantile bound.
//!
//! `--max-steps` / `--deadline-ms` install a process-wide resource budget:
//! every certifier the evaluation constructs inherits it, and engines whose
//! fixpoints exhaust it degrade to inconclusive verdicts instead of running
//! away. `oracle` runs the concrete-execution oracle on the Fig. 3 client
//! (exit 1 on an oracle error, e.g. a contained interpreter panic — the CI
//! fault-injection matrix drives this with `CANVAS_FAULT=oracle-death`).

use std::collections::BTreeMap;
use std::env;
use std::process::ExitCode;

use canvas_bench::{
    collect_eval_metrics, derivation_table, deterministic_drift, fmt_duration, json::Json,
    metrics_to_json, precision_table, render_derive, render_fig3, scaling_blocks, scaling_vars,
    PrecisionCell, FIG3,
};
use canvas_core::{Certifier, Engine};

const TABLES: &[&str] = &[
    "derive",
    "fig3",
    "fig3-metrics",
    "fig6",
    "fig7",
    "fig8",
    "generic-vs-specialized",
    "precision",
    "timing",
    "modes",
    "scaling",
    "specs",
    "interproc",
    "incr",
    "certs",
    "all",
];

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        return compare(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace-check") {
        return trace_check(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("oracle") {
        return oracle_check();
    }
    if args.first().map(String::as_str) == Some("fixpoint") {
        return fixpoint(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fleet") {
        return fleet(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("obs") {
        return obs(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("overload") {
        return overload(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("log-check") {
        return log_check(&args[1..]);
    }

    let mut table: Option<String> = None;
    let mut budget = canvas_faults::Budget::unlimited();
    let mut metrics = false;
    let mut explain = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" => metrics = true,
            "--explain" => explain = true,
            "--trace-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => trace_out = Some(p.clone()),
                    None => {
                        eprintln!("--trace-out needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--log-json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => {
                        if let Err(e) =
                            canvas_telemetry::events::log_to_file(std::path::Path::new(p))
                        {
                            eprintln!("cannot open log {p}: {e}");
                            return ExitCode::from(2);
                        }
                        canvas_telemetry::events::set_min_level(
                            canvas_telemetry::events::Level::Info,
                        );
                    }
                    None => {
                        eprintln!("--log-json needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--metrics-json" => {
                // optional PATH operand (anything that is not a flag/table)
                let path = match args.get(i + 1) {
                    Some(p) if !p.starts_with("--") && !TABLES.contains(&p.as_str()) => {
                        i += 1;
                        p.clone()
                    }
                    _ => "BENCH_eval.json".to_string(),
                };
                metrics_json = Some(path);
            }
            "--check-baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => baseline = Some(p.clone()),
                    None => {
                        eprintln!("--check-baseline needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--max-steps" | "--deadline-ms" => {
                let flag = args[i].clone();
                i += 1;
                let n: u64 = match args.get(i).map(|v| v.parse()) {
                    Some(Ok(n)) => n,
                    _ => {
                        eprintln!("{flag} needs a number");
                        return ExitCode::from(2);
                    }
                };
                budget = match flag.as_str() {
                    "--max-steps" => budget.with_max_steps(n),
                    _ => budget.with_deadline_ms(n),
                };
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option {other:?}");
                return ExitCode::from(2);
            }
            other if TABLES.contains(&other) => table = Some(other.to_string()),
            other => {
                eprintln!("unknown table {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if !budget.is_unlimited() {
        canvas_faults::set_process_budget(budget);
    }

    if metrics_json.is_some() || baseline.is_some() {
        let m = collect_eval_metrics();
        let doc = metrics_to_json(&m);
        if let Some(path) = &metrics_json {
            if let Err(e) = std::fs::write(path, doc.render()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            println!("wrote {path}");
        }
        if metrics {
            print!("{}", m.snapshot);
        }
        if let Some(t) = &table {
            run_table(t, explain);
        }
        if let Some(path) = &baseline {
            let base =
                match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|text| {
                    Json::parse(&text).map_err(|e| format!("not a JSON document: {e}"))
                }) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("cannot read baseline {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
            let drift = deterministic_drift(&doc, &base);
            if drift.is_empty() {
                println!("baseline check: deterministic counters match {path}");
            } else {
                eprintln!("baseline drift against {path}:");
                for d in &drift {
                    eprintln!("  {d}");
                }
                eprintln!("({} difference(s); timings are never gated)", drift.len());
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    if metrics {
        canvas_telemetry::set_enabled(true);
    }
    canvas_telemetry::trace::set_tracing(trace_out.is_some());
    run_table(table.as_deref().unwrap_or("all"), explain);
    if metrics {
        print!("{}", canvas_telemetry::snapshot());
    }
    if let Some(path) = &trace_out {
        let json = canvas_telemetry::trace::export_chrome_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write trace {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote trace to {path}");
    }
    ExitCode::SUCCESS
}

/// `eval fixpoint [--json PATH] [--check-baseline PATH]`: E12 — the
/// bit-parallel FDS kernel vs the per-bit reference on a scaling sweep,
/// plus the within-method delta re-solve on the E10 edit workload.
/// `--json` writes the `canvas-bench-eval/2` document (CI uploads it as
/// `BENCH_fixpoint.json`); `--check-baseline` gates the deterministic
/// work-unit counters against the `"fixpoint"` key of the committed
/// baseline and exits 1 on drift (wall times are reported, never gated).
fn fixpoint(args: &[String]) -> ExitCode {
    use canvas_bench::fixpoint::{
        collect_fixpoint_metrics, fixpoint_drift, fixpoint_to_json, render_fixpoint,
    };
    let mut json_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json_out = Some(p.clone()),
                    None => {
                        eprintln!("--json needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--check-baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => baseline = Some(p.clone()),
                    None => {
                        eprintln!("--check-baseline needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown fixpoint option {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let m = collect_fixpoint_metrics();
    print!("{}", render_fixpoint(&m));
    let doc = fixpoint_to_json(&m);
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, doc.render()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    if let Some(path) = &baseline {
        let base = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| format!("not a JSON document: {e}")))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let drift = fixpoint_drift(&doc, &base);
        if drift.is_empty() {
            println!("baseline check: fixpoint counters match {path}");
        } else {
            eprintln!("fixpoint baseline drift against {path}:");
            for d in &drift {
                eprintln!("  {d}");
            }
            eprintln!("({} difference(s); wall times are never gated)", drift.len());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `eval fleet [--json PATH] [--check-baseline PATH]`: the E15 fleet
/// benchmark — shard sweep (1/2/4/8) over a fixed synthetic corpus plus a
/// cold->warm certificate-store pair. `--check-baseline` gates the
/// deterministic section (verdicts, digests, warm-run misses) against the
/// committed baseline's `"fleet"` key and exits 1 on drift.
fn fleet(args: &[String]) -> ExitCode {
    use canvas_bench::fleet::{collect_fleet_metrics, fleet_drift, fleet_to_json, render_fleet};
    let mut json_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json_out = Some(p.clone()),
                    None => {
                        eprintln!("--json needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--check-baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => baseline = Some(p.clone()),
                    None => {
                        eprintln!("--check-baseline needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown fleet option {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let m = collect_fleet_metrics();
    print!("{}", render_fleet(&m));
    let doc = fleet_to_json(&m);
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, doc.render()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    if let Some(path) = &baseline {
        let base = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| format!("not a JSON document: {e}")))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let drift = fleet_drift(&doc, &base);
        if drift.is_empty() {
            println!("baseline check: fleet counters match {path}");
        } else {
            eprintln!("fleet baseline drift against {path}:");
            for d in &drift {
                eprintln!("  {d}");
            }
            eprintln!("({} difference(s); wall times are never gated)", drift.len());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `eval oracle`: run the concrete-execution oracle on the Fig. 3 client.
/// `eval obs [--json PATH] [--gate]`: the E13 observability harness —
/// telemetry overhead under disabled/enabled/scoped modes and log₂-histogram
/// quantile fidelity. `--gate` exits 1 when an overhead ceiling or the
/// factor-2 quantile bound is broken (the CI obs-smoke gate).
fn obs(args: &[String]) -> ExitCode {
    use canvas_bench::obs::{collect_obs, collect_obs_gated, obs_to_json, render_obs};
    let mut json_out: Option<String> = None;
    let mut gate = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json_out = Some(p.clone()),
                    None => {
                        eprintln!("--json needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--gate" => gate = true,
            other => {
                eprintln!("unknown obs option {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    // gating re-measures a noise-spiked overhead table up to twice before
    // believing a ceiling violation; the plain run measures once
    let (report, fails) = if gate { collect_obs_gated(2) } else { (collect_obs(), Vec::new()) };
    print!("{}", render_obs(&report));
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, obs_to_json(&report).render()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    if gate {
        if !fails.is_empty() {
            eprintln!("observability gate failed:");
            for f in &fails {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("observability gate: overheads within ceilings, quantiles within factor 2");
    }
    ExitCode::SUCCESS
}

/// `eval overload [--json PATH] [--gate]`: E14 — the open-loop overload
/// sweep against an in-process `canvas serve` TCP daemon at 1x/4x/16x the
/// calibrated capacity. `--gate` exits 1 when the robustness shape breaks:
/// sheds at nominal load, nothing shed at 16x, an unbounded admitted-p99,
/// a lost response, or hot-cache occupancy above its byte budget.
fn overload(args: &[String]) -> ExitCode {
    use canvas_bench::overload::{
        collect_overload, gate_overload, overload_to_json, render_overload,
    };
    let mut json_out: Option<String> = None;
    let mut gate = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json_out = Some(p.clone()),
                    None => {
                        eprintln!("--json needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--gate" => gate = true,
            other => {
                eprintln!("unknown overload option {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let report = match collect_overload() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("overload harness failed: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", render_overload(&report));
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, overload_to_json(&report).render()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    if gate {
        let fails = gate_overload(&report);
        if !fails.is_empty() {
            eprintln!("overload gate failed:");
            for f in &fails {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "overload gate: nominal load serves clean, 16x sheds in-band with bounded p99, \
             cache within budget"
        );
    }
    ExitCode::SUCCESS
}

/// `eval log-check FILE`: exit 1 unless `FILE` is a valid `canvas-log/1`
/// NDJSON stream in emit order (the CI obs-smoke gate for `--log-json`).
fn log_check(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("usage: eval log-check FILE");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match canvas_bench::obs::check_log_text(&text) {
        Ok(n) => {
            println!("log check: {n} canvas-log/1 record(s), (ts_ns, seq)-ordered");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("log check failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Exit 1 on an oracle error (no main, spawn failure, or a contained
/// interpreter panic — the injected `oracle-death` fault lands here).
fn oracle_check() -> ExitCode {
    use canvas_suite::oracle::{explore, OracleConfig};
    let spec = canvas_easl::builtin::cmp();
    let program = match canvas_minijava::Program::parse(FIG3, &spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("eval oracle: fig3 does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    match explore(&program, &spec, OracleConfig::default()) {
        Ok(r) => {
            println!(
                "oracle: {} violation line(s) {:?}, {} path(s), truncated: {}",
                r.violation_lines.len(),
                r.violation_lines,
                r.paths,
                r.truncated
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("eval oracle: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `eval trace-check PATH`: exit 1 unless `PATH` is a valid Chrome Trace
/// Format document with at least one event (the CI bench-smoke gate).
fn trace_check(paths: &[String]) -> ExitCode {
    let [path] = paths else {
        eprintln!("usage: eval trace-check PATH");
        return ExitCode::from(2);
    };
    let doc = match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| Json::parse(&text))
    {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match doc.get("traceEvents") {
        Some(Json::Arr(events)) if !events.is_empty() => {
            println!("{path}: valid Chrome Trace JSON with {} event(s)", events.len());
            ExitCode::SUCCESS
        }
        Some(Json::Arr(_)) => {
            eprintln!("{path}: traceEvents is empty");
            ExitCode::FAILURE
        }
        _ => {
            eprintln!("{path}: missing traceEvents array");
            ExitCode::FAILURE
        }
    }
}

/// `eval compare A.json B.json`: exit 1 when the deterministic sections of
/// two metrics documents differ.
fn compare(paths: &[String]) -> ExitCode {
    let [a, b] = paths else {
        eprintln!("usage: eval compare A.json B.json");
        return ExitCode::from(2);
    };
    let read = |path: &String| {
        std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text))
            .unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            })
    };
    let drift = deterministic_drift(&read(a), &read(b));
    if drift.is_empty() {
        println!("deterministic metrics identical: {a} == {b}");
        ExitCode::SUCCESS
    } else {
        eprintln!("deterministic metrics differ between {a} and {b}:");
        for d in &drift {
            eprintln!("  {d}");
        }
        ExitCode::FAILURE
    }
}

fn run_table(what: &str, explain: bool) {
    match what {
        "derive" => table_derive(),
        "fig3" if explain => print!("{}", canvas_bench::render_fig3_explained()),
        "fig3" => table_fig3(),
        "fig3-metrics" => table_fig3_metrics(),
        "fig6" => figure_fig6(),
        "fig7" => figure_fig7(),
        "fig8" => figure_fig8(),
        "generic-vs-specialized" => table_generic_vs_specialized(),
        "precision" => table_precision(),
        "timing" => table_timing(),
        "modes" => table_modes(),
        "scaling" => figure_scaling(),
        "specs" => table_specs(),
        "interproc" => table_interproc(),
        "incr" => table_incr(),
        "certs" => table_certs(),
        "all" => {
            table_derive();
            table_fig3();
            table_fig3_metrics();
            figure_fig6();
            figure_fig7();
            figure_fig8();
            table_generic_vs_specialized();
            table_precision();
            table_timing();
            table_modes();
            figure_scaling();
            table_specs();
            table_interproc();
            table_incr();
            table_certs();
        }
        other => unreachable!("table {other:?} was validated during parsing"),
    }
}

fn header(title: &str) {
    println!();
    println!("== {title} ==");
    println!();
}

/// E1: the derived abstraction for CMP (paper Figs. 4–5).
fn table_derive() {
    print!("{}", render_derive());
}

/// E2: the Fig. 3 walkthrough.
fn table_fig3() {
    print!("{}", render_fig3());
}

/// E2 counters: deterministic work per engine on Fig. 3 (golden-tested).
fn table_fig3_metrics() {
    print!("{}", canvas_bench::render_fig3_metrics());
}

/// The paper's Fig. 6: the transformed boolean client program for Fig. 3.
fn figure_fig6() {
    header("Fig. 6: the transformed (boolean) client program for Fig. 3");
    let spec = canvas_easl::builtin::cmp();
    let derived = canvas_wp::derive_abstraction(&spec).expect("cmp derives");
    let program = canvas_minijava::Program::parse(FIG3, &spec).expect("fig3 parses");
    let main = program.main_method().expect("main");
    let bp = canvas_abstraction::transform_method(
        &program,
        main,
        &spec,
        &derived,
        canvas_abstraction::EntryAssumption::Clean,
    );
    print!("{}", bp.dump(&program, &derived));
}

/// The paper's Fig. 7: storage shape graphs before/after `i1.remove()`
/// under the *generic* translation — the two version objects merge.
fn figure_fig7() {
    header("Fig. 7: generic shape graphs around i1.remove() (version objects merge)");
    let spec = canvas_easl::builtin::cmp();
    let program = canvas_minijava::Program::parse(FIG3, &spec).expect("fig3 parses");
    let main = program.main_method().expect("main");
    let tvp = canvas_tvla::translate_generic(&program, main, &spec);
    let (_, states) = canvas_tvla::run_collect(&tvp, canvas_tvla::EngineMode::Relational, 50_000);
    // locate the remove edge in the IR (same node ids as the TVP prefix)
    let (before, after) = remove_nodes(&program);
    println!("before i1.remove() ({} structure(s)):", states[before].len());
    for s in &states[before] {
        print!("{}", canvas_tvla::render_structure(s, &tvp.preds));
        println!("  --");
    }
    println!("after i1.remove() ({} structure(s)):", states[after].len());
    for s in &states[after] {
        print!("{}", canvas_tvla::render_structure(s, &tvp.preds));
        println!("  --");
    }
}

/// The paper's Fig. 8: the nullary abstract state before/after
/// `i1.remove()` under the *specialized* certifier.
fn figure_fig8() {
    header("Fig. 8: specialized abstract state around i1.remove()");
    let spec = canvas_easl::builtin::cmp();
    let derived = canvas_wp::derive_abstraction(&spec).expect("cmp derives");
    let program = canvas_minijava::Program::parse(FIG3, &spec).expect("fig3 parses");
    let main = program.main_method().expect("main");
    let bp = canvas_abstraction::transform_method(
        &program,
        main,
        &spec,
        &derived,
        canvas_abstraction::EntryAssumption::Clean,
    );
    let rel = canvas_dataflow::relational::analyze(&bp, 1 << 14).expect("fig3 is tiny");
    let (before, after) = remove_nodes(&program);
    for (label, node) in [("before", before), ("after", after)] {
        println!("{label} i1.remove():");
        for val in &rel.states[node] {
            let mut parts = Vec::new();
            for k in 0..bp.preds.len() {
                parts.push(format!(
                    "{}={}",
                    bp.pred_name(k, &program, &derived),
                    u8::from(val.get(k))
                ));
            }
            println!("  {}", parts.join("  "));
        }
    }
}

/// The CFG nodes immediately before and after the `i1.remove()` call.
fn remove_nodes(program: &canvas_minijava::Program) -> (usize, usize) {
    let main = program.main_method().expect("main");
    for e in main.cfg.edges() {
        if let canvas_minijava::Instr::CallComponent { method, at, .. } = &e.instr {
            if method == "remove" && at.what.starts_with("i1") {
                return (e.from.0, e.to.0);
            }
        }
    }
    unreachable!("fig3 contains i1.remove()")
}

/// E3: generic vs specialized on the two killer examples.
fn table_generic_vs_specialized() {
    header("E3: generic baselines vs the specialized certifier (§3, §4.4)");
    let c = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    let loop_src = r#"
class Main {
    static void main() {
        Set s = new Set();
        while (true) {
            s.add("x");
            for (Iterator i = s.iterator(); i.hasNext(); ) { i.next(); }
        }
    }
}
"#;
    println!("version-loop (safe):");
    for engine in [Engine::ScmpFds, Engine::GenericAllocSite, Engine::GenericSsgRelational] {
        let r = c.certify_source(loop_src, engine).expect("runs");
        println!("  {:<26} -> {} false alarm(s)", engine.to_string(), r.violations.len());
    }
    println!("fig3 line 11 (safe use of i3):");
    for engine in [Engine::ScmpFds, Engine::GenericAllocSite, Engine::GenericSsgRelational] {
        let r = c.certify_source(FIG3, engine).expect("runs");
        let fa = r.lines().contains(&11);
        println!("  {:<26} -> {}", engine.to_string(), if fa { "FALSE ALARM" } else { "exact" });
    }
}

fn cells_by_engine(cells: &[PrecisionCell]) -> BTreeMap<String, Vec<&PrecisionCell>> {
    let mut out: BTreeMap<String, Vec<&PrecisionCell>> = BTreeMap::new();
    for c in cells {
        out.entry(c.engine.to_string()).or_default().push(c);
    }
    out
}

/// E4: the precision table.
fn table_precision() {
    header("E4: precision per benchmark x engine (reported / real / false alarms)");
    let cells = precision_table();
    // wide table: benchmarks as rows, engines as columns (abbreviated)
    let engines: Vec<Engine> = Engine::all();
    print!("{:<20} {:>5}", "benchmark", "real");
    for e in &engines {
        print!(" {:>12}", e.abbrev());
    }
    println!();
    let mut names: Vec<&'static str> = cells.iter().map(|c| c.benchmark).collect();
    names.dedup();
    for name in names {
        let real = cells.iter().find(|c| c.benchmark == name).map(|c| c.real).unwrap_or_default();
        print!("{name:<20} {real:>5}");
        for e in &engines {
            let cell = cells
                .iter()
                .find(|c| c.benchmark == name && c.engine == *e)
                .expect("every cell present");
            let s = match &cell.failed {
                Some(_) if cell.poisoned => "poisoned".to_string(),
                Some(_) => "budget".to_string(),
                None => format!("{}+{}fa", cell.reported - cell.false_alarms, cell.false_alarms),
            };
            print!(" {s:>12}");
        }
        println!();
    }
    // summary
    println!();
    for (engine, cs) in cells_by_engine(&cells) {
        let ok: Vec<_> = cs.iter().filter(|c| c.failed.is_none()).collect();
        let fa: usize = ok.iter().map(|c| c.false_alarms).sum();
        let missed: usize = ok.iter().map(|c| c.missed).sum();
        let poisoned = cs.iter().filter(|c| c.poisoned).count();
        let failed = cs.len() - ok.len() - poisoned;
        print!(
            "{engine:<26} false alarms: {fa:>3}   missed: {missed:>2}   budget failures: {failed}"
        );
        if poisoned > 0 {
            print!("   poisoned: {poisoned}");
        }
        println!();
    }
}

/// E5: the timing table, plus the deterministic work counters behind it.
fn table_timing() {
    header("E5: analysis time per benchmark x engine");
    let cells = precision_table();
    let engines: Vec<Engine> = Engine::all();
    print!("{:<20}", "benchmark");
    for e in &engines {
        print!(" {:>10}", e.abbrev());
    }
    println!();
    let mut names: Vec<&'static str> = cells.iter().map(|c| c.benchmark).collect();
    names.dedup();
    for name in &names {
        print!("{name:<20}");
        for e in &engines {
            let cell = cells
                .iter()
                .find(|c| c.benchmark == *name && c.engine == *e)
                .expect("every cell present");
            let s = match &cell.failed {
                Some(_) => "-".to_string(),
                None => fmt_duration(cell.time),
            };
            print!(" {s:>10}");
        }
        println!();
    }
    // the deterministic work counters the timings are made of (same layout;
    // these are what CI gates against bench/baseline.json)
    println!();
    println!("work units (deterministic) per benchmark x engine:");
    print!("{:<20}", "benchmark");
    for e in &engines {
        print!(" {:>10}", e.abbrev());
    }
    println!();
    for name in &names {
        print!("{name:<20}");
        for e in &engines {
            let cell = cells
                .iter()
                .find(|c| c.benchmark == *name && c.engine == *e)
                .expect("every cell present");
            let s = match &cell.failed {
                Some(_) => "-".to_string(),
                None => cell.work.to_string(),
            };
            print!(" {s:>10}");
        }
        println!();
    }
}

/// E6: relational vs independent-attribute TVLA (the §7 observation).
fn table_modes() {
    header("E6: TVLA relational vs independent-attribute (same precision per §7)");
    let cells = precision_table();
    let mut names: Vec<&'static str> = cells.iter().map(|c| c.benchmark).collect();
    names.dedup();
    let mut diff = 0;
    for name in names {
        let rel = cells
            .iter()
            .find(|c| c.benchmark == name && c.engine == Engine::TvlaRelational)
            .expect("cell");
        let ind = cells
            .iter()
            .find(|c| c.benchmark == name && c.engine == Engine::TvlaIndependent)
            .expect("cell");
        let same = rel.reported == ind.reported && rel.false_alarms == ind.false_alarms;
        if !same {
            diff += 1;
        }
        println!(
            "{name:<20} relational {} ({}fa, {})  independent {} ({}fa, {})  {}",
            rel.reported,
            rel.false_alarms,
            fmt_duration(rel.time),
            ind.reported,
            ind.false_alarms,
            fmt_duration(ind.time),
            if same { "same" } else { "DIFFER" }
        );
    }
    println!("\nbenchmarks where the modes differ in precision: {diff}");
}

/// E7: the scaling figure (printed series).
fn figure_scaling() {
    header("E7: FDS certifier scaling (polynomial in E and B)");
    println!("sweep client size (blocks of sets+iterators):");
    println!("{:>8} {:>8} {:>8} {:>10} {:>10}", "blocks", "edges", "preds", "work", "time");
    for p in scaling_blocks(&[2, 4, 8, 16, 32, 64, 128]) {
        println!(
            "{:>8} {:>8} {:>8} {:>10} {:>10}",
            p.param,
            p.edges,
            p.predicates,
            p.work,
            fmt_duration(p.time)
        );
    }
    println!("\nsweep component variables (iterator ring; preds grow ~B^2):");
    println!("{:>8} {:>8} {:>8} {:>10} {:>10}", "vars", "edges", "preds", "work", "time");
    for p in scaling_vars(&[2, 4, 8, 16, 32, 64]) {
        println!(
            "{:>8} {:>8} {:>8} {:>10} {:>10}",
            p.param,
            p.edges,
            p.predicates,
            p.work,
            fmt_duration(p.time)
        );
    }
}

/// E8: derivation convergence and the mutation-restricted class.
fn table_specs() {
    header("E8: spec classification and derivation convergence (§6)");
    for row in derivation_table() {
        println!(
            "{:<4} {:?}: {} families, converged (rounds: {:?})",
            row.spec,
            row.class,
            row.families.len(),
            row.rounds
        );
    }
    let unbounded = canvas_easl::builtin::unbounded();
    println!(
        "unbounded (adversarial) {:?}: derivation -> {}",
        canvas_easl::classify(&unbounded),
        match canvas_wp::derive_with_budget(&unbounded, 8) {
            Ok(_) => "converged (unexpected!)".to_string(),
            Err(e) => format!("{e}"),
        }
    );
}

/// E10: incremental certification — cold vs warm vs edited-one-method.
fn table_incr() {
    print!("{}", canvas_bench::render_incr());
}

/// E11: proof-carrying certificates — emit cost vs replay-check cost vs size.
fn table_certs() {
    print!("{}", canvas_bench::render_certs());
}

/// E9: interprocedural certification.
fn table_interproc() {
    header("E9: context-sensitive interprocedural SCMP (§8)");
    let cells = precision_table();
    for name in [
        "make-worklist",
        "interproc-grow",
        "interproc-other-set",
        "interproc-returned",
        "app-cache",
    ] {
        for engine in [Engine::ScmpFds, Engine::ScmpInterproc] {
            if let Some(cell) = cells.iter().find(|c| c.benchmark == name && c.engine == engine) {
                println!(
                    "{name:<22} {:<16} real {}  reported {}  false alarms {}",
                    engine.to_string(),
                    cell.real,
                    cell.reported,
                    cell.false_alarms
                );
            }
        }
    }
    println!("\n(the intraprocedural engine is sound but must havoc across calls;");
    println!(" the §8 engine removes exactly those false alarms)");
}
