//! E13: observability overhead and quantile fidelity.
//!
//! Two questions gate the observability layer before it is allowed to ride
//! along on every certification:
//!
//! 1. **Cost.** All instrumentation short-circuits on one relaxed load when
//!    telemetry is disabled, so the disabled path is the baseline every
//!    other mode is compared against. An *enabled* run (global counters,
//!    timers, histograms live) must stay within 2% of that baseline on a
//!    representative certification workload, and a *scoped* run (a
//!    [`canvas_telemetry::Scope`] entered around every certification, as
//!    the serve daemon and the parallel suite driver do) within 4%.
//! 2. **Fidelity.** The log₂-bucket histograms estimate p50/p90/p99 by rank
//!    interpolation inside the crossing bucket, which is exact to within
//!    one bucket width — a factor of 2. The harness replays deterministic
//!    synthetic distributions through an instance histogram and checks the
//!    estimates against the exact percentiles of the sorted samples.
//!
//! Timing samples interleave the modes round-robin (disabled, enabled,
//! scoped, repeat) so slow drift on a shared CI runner biases every mode
//! equally, and the gate compares the per-mode *minimum*: scheduling noise
//! is strictly additive, so the fastest of many short samples is the
//! robust estimator of a mode's true cost (the median is recorded for
//! context but never gated). Running the harness resets the global
//! telemetry registry.

use std::time::Instant;

use canvas_core::{Certifier, Engine};
use canvas_suite::generators;

use crate::json::{obj, Json};

/// Basis-point ceiling for the enabled-telemetry overhead (2%).
pub const ENABLED_LIMIT_BP: u64 = 200;
/// Basis-point ceiling for the scoped-telemetry overhead (4%).
pub const SCOPED_LIMIT_BP: u64 = 400;

/// Cost of one workload mode, against the disabled baseline.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// `disabled`, `enabled`, or `scoped`.
    pub mode: &'static str,
    /// Median nanoseconds per timing sample (context only, never gated —
    /// it folds in scheduler noise).
    pub median_ns: u64,
    /// Fastest sample: the gated estimator of the mode's true cost.
    pub min_ns: u64,
    /// Fastest-sample overhead versus the disabled baseline, in basis
    /// points (clamped at zero when the mode measured faster).
    pub overhead_bp: u64,
}

/// One quantile of one synthetic distribution: exact versus estimated.
#[derive(Clone, Debug)]
pub struct QuantileRow {
    /// Sample distribution (`uniform` or `heavy_tail`).
    pub distribution: &'static str,
    /// `p50`, `p90`, or `p99`.
    pub quantile: &'static str,
    /// Exact percentile of the sorted samples.
    pub exact: u64,
    /// The histogram's rank-interpolated estimate.
    pub estimate: u64,
    /// Whether the estimate respects the factor-2 bucket bound.
    pub within_factor_2: bool,
}

/// The full E13 report.
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// Workload iterations folded into each timing sample.
    pub iterations_per_sample: u64,
    /// Timing samples per mode (the fastest is gated).
    pub samples_per_mode: u64,
    /// One row per mode, `disabled` first.
    pub overhead: Vec<OverheadRow>,
    /// Three quantiles per distribution.
    pub quantiles: Vec<QuantileRow>,
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn basis_points(cost: u64, base: u64) -> u64 {
    if base == 0 {
        return 0;
    }
    (u128::from(cost.saturating_sub(base)) * 10_000 / u128::from(base)) as u64
}

/// Runs the overhead harness: a generated 16-block CMP client (the E7
/// scaling generator — representative of a real certification request,
/// unlike the 12-line Fig. 3 where fixed per-phase instrument cost would
/// dominate), certified under the three telemetry modes with interleaved
/// sampling.
pub fn overhead_table(iterations: u64, samples: u64) -> Vec<OverheadRow> {
    let was = canvas_telemetry::enabled();
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    let generated = generators::scmp_blocks(16, 2, 0.0, 1);
    let program = canvas_minijava::Program::parse(&generated.source, certifier.spec())
        .expect("generated clients parse");
    let workload = || {
        for _ in 0..iterations {
            let _ = certifier.certify_program(&program, Engine::ScmpFds);
        }
    };
    // warm caches and the branch predictor before any timed sample
    canvas_telemetry::set_enabled(false);
    workload();
    canvas_telemetry::set_enabled(true);
    workload();

    let mut timed: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..samples {
        for (mode, bucket) in timed.iter_mut().enumerate() {
            canvas_telemetry::set_enabled(mode != 0);
            let scope = canvas_telemetry::Scope::new("obs.sample");
            let start = Instant::now();
            if mode == 2 {
                let _in_scope = scope.enter();
                workload();
            } else {
                workload();
            }
            bucket.push(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    }
    canvas_telemetry::set_enabled(was);
    canvas_telemetry::reset();

    let mins: Vec<u64> = timed.iter().map(|b| *b.iter().min().expect("samples > 0")).collect();
    let medians: Vec<u64> = timed.iter_mut().map(|b| median(b)).collect();
    let base = mins[0];
    ["disabled", "enabled", "scoped"]
        .into_iter()
        .enumerate()
        .map(|(i, mode)| OverheadRow {
            mode,
            median_ns: medians[i],
            min_ns: mins[i],
            overhead_bp: if i == 0 { 0 } else { basis_points(mins[i], base) },
        })
        .collect()
}

/// Deterministic 64-bit LCG (Knuth's MMIX multiplier); the whole fidelity
/// table is a pure function of this sequence.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let target = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(target - 1) as usize]
}

/// Runs the quantile-fidelity harness: `n` samples of each synthetic
/// distribution through an instance histogram, estimates against exact.
pub fn quantile_table(n: usize) -> Vec<QuantileRow> {
    let mut out = Vec::new();
    type Draw = Box<dyn Fn(&mut u64) -> u64>;
    let distributions: [(&'static str, Draw); 2] = [
        // uniform over [1, 10^6]: every bucket from 0..20 populated
        ("uniform", Box::new(|s: &mut u64| lcg(s) % 1_000_000 + 1)),
        // heavy tail: exponential with mean 50µs-ish, the shape of real
        // request latencies (most samples small, p99 far from p50)
        (
            "heavy_tail",
            Box::new(|s: &mut u64| {
                let u = (lcg(s) >> 11) as f64 / (1u64 << 53) as f64;
                (-(1.0 - u).ln() * 50_000.0) as u64 + 1
            }),
        ),
    ];
    for (name, draw) in &distributions {
        let mut state = 0x6f62_735f_6531_3321; // fixed seed: fully reproducible
        let hist = canvas_telemetry::Histogram::new("obs.fidelity");
        let mut samples: Vec<u64> = (0..n)
            .map(|_| {
                let v = draw(&mut state);
                hist.record_value(v);
                v
            })
            .collect();
        samples.sort_unstable();
        let stat = hist.stat();
        for (quantile, q, estimate) in
            [("p50", 0.50, stat.p50), ("p90", 0.90, stat.p90), ("p99", 0.99, stat.p99)]
        {
            let exact = exact_percentile(&samples, q);
            out.push(QuantileRow {
                distribution: name,
                quantile,
                exact,
                estimate,
                within_factor_2: estimate <= exact.saturating_mul(2)
                    && exact <= estimate.saturating_mul(2),
            });
        }
    }
    out
}

/// The full E13 report with the default sizing (single-certification
/// samples, best of 100 per mode, 10k fidelity samples per distribution).
/// Single-iteration samples give the minimum the most chances to land in a
/// quiet scheduling window.
pub fn collect_obs() -> ObsReport {
    let iterations = 1;
    let samples = 100;
    ObsReport {
        iterations_per_sample: iterations,
        samples_per_mode: samples,
        overhead: overhead_table(iterations, samples),
        quantiles: quantile_table(10_000),
    }
}

/// [`collect_obs`] for gating. The fidelity rows are deterministic, but an
/// overhead ceiling violation can still be a scheduler-noise spike that
/// even min-of-N sampling caught: on such a violation the harness
/// re-measures the overhead table, up to `extra_trials` more times, and
/// keeps the first measurement that clears the ceilings (noise only ever
/// inflates the estimate, so one clean trial certifies the intrinsic
/// cost). Deterministic fidelity violations are never retried.
pub fn collect_obs_gated(extra_trials: u32) -> (ObsReport, Vec<String>) {
    let mut report = collect_obs();
    let mut fails = obs_gate(&report);
    for _ in 0..extra_trials {
        if !fails.iter().any(|f| f.contains("ceiling")) {
            break;
        }
        report.overhead = overhead_table(report.iterations_per_sample, report.samples_per_mode);
        fails = obs_gate(&report);
    }
    (report, fails)
}

/// E13 as text.
pub fn render_obs(r: &ObsReport) -> String {
    use std::fmt::Write as _;
    let mut out = crate::render_header("E13: observability overhead and quantile fidelity");
    let _ = writeln!(
        out,
        "overhead (16-block FDS certification x{}, best of {} samples per mode):",
        r.iterations_per_sample, r.samples_per_mode
    );
    let _ = writeln!(out, "{:<10} {:>12} {:>12} {:>9}", "mode", "median", "min", "overhead");
    for row in &r.overhead {
        let _ = writeln!(
            out,
            "{:<10} {:>10}µs {:>10}µs {:>6}bp",
            row.mode,
            row.median_ns / 1_000,
            row.min_ns / 1_000,
            row.overhead_bp
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "quantile fidelity (log2 histogram vs exact, 10k samples):");
    let _ = writeln!(
        out,
        "{:<12} {:<6} {:>10} {:>10} {:>10}",
        "distribution", "q", "exact", "estimate", "factor<=2"
    );
    for row in &r.quantiles {
        let _ = writeln!(
            out,
            "{:<12} {:<6} {:>10} {:>10} {:>10}",
            row.distribution,
            row.quantile,
            row.exact,
            row.estimate,
            if row.within_factor_2 { "yes" } else { "NO" }
        );
    }
    out
}

/// The stable `canvas-bench-obs/1` document (`BENCH_obs.json`). Timings are
/// measured, the fidelity rows are deterministic.
pub fn obs_to_json(r: &ObsReport) -> Json {
    let overhead = Json::Arr(
        r.overhead
            .iter()
            .map(|row| {
                obj(vec![
                    ("mode", Json::Str(row.mode.to_string())),
                    ("median_ns", Json::Int(row.median_ns)),
                    ("min_ns", Json::Int(row.min_ns)),
                    ("overhead_bp", Json::Int(row.overhead_bp)),
                ])
            })
            .collect(),
    );
    let quantiles = Json::Arr(
        r.quantiles
            .iter()
            .map(|row| {
                obj(vec![
                    ("distribution", Json::Str(row.distribution.to_string())),
                    ("quantile", Json::Str(row.quantile.to_string())),
                    ("exact", Json::Int(row.exact)),
                    ("estimate", Json::Int(row.estimate)),
                    ("within_factor_2", Json::Bool(row.within_factor_2)),
                ])
            })
            .collect(),
    );
    obj(vec![
        ("schema", Json::Str("canvas-bench-obs/1".to_string())),
        (
            "config",
            obj(vec![
                ("iterations_per_sample", Json::Int(r.iterations_per_sample)),
                ("samples_per_mode", Json::Int(r.samples_per_mode)),
                ("enabled_limit_bp", Json::Int(ENABLED_LIMIT_BP)),
                ("scoped_limit_bp", Json::Int(SCOPED_LIMIT_BP)),
            ]),
        ),
        ("overhead", overhead),
        ("quantiles", quantiles),
    ])
}

/// Gates the report: enabled/scoped overhead under their basis-point
/// ceilings, every quantile estimate within the factor-2 bound. Returns the
/// violations as human-readable lines (empty = pass).
pub fn obs_gate(r: &ObsReport) -> Vec<String> {
    let mut fails = Vec::new();
    for row in &r.overhead {
        let limit = match row.mode {
            "enabled" => ENABLED_LIMIT_BP,
            "scoped" => SCOPED_LIMIT_BP,
            _ => continue,
        };
        if row.overhead_bp > limit {
            fails.push(format!(
                "{} overhead {}bp exceeds the {}bp ceiling",
                row.mode, row.overhead_bp, limit
            ));
        }
    }
    for row in &r.quantiles {
        if !row.within_factor_2 {
            fails.push(format!(
                "{} {}: estimate {} vs exact {} breaks the factor-2 bound",
                row.distribution, row.quantile, row.estimate, row.exact
            ));
        }
    }
    fails
}

/// Validates a `canvas-log/1` NDJSON stream: every line a JSON object with
/// the required fields, levels from the closed set, and `(ts_ns, seq)`
/// non-decreasing in file order with strictly increasing `seq` (the sink
/// assigns both under one lock, so file order *is* emit order). Returns the
/// record count.
pub fn check_log_text(text: &str) -> Result<usize, String> {
    let mut last: Option<(u64, u64)> = None;
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = lineno + 1;
        let doc = Json::parse(line).map_err(|e| format!("line {n}: not JSON: {e}"))?;
        let int_field = |key: &str| -> Result<u64, String> {
            match doc.get(key) {
                Some(Json::Int(v)) => Ok(*v),
                _ => Err(format!("line {n}: missing integer field {key:?}")),
            }
        };
        let str_field = |key: &str| -> Result<String, String> {
            match doc.get(key) {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(format!("line {n}: missing string field {key:?}")),
            }
        };
        let schema = str_field("v")?;
        if schema != canvas_telemetry::events::SCHEMA {
            return Err(format!("line {n}: unknown schema {schema:?}"));
        }
        let seq = int_field("seq")?;
        let ts = int_field("ts_ns")?;
        let level = str_field("level")?;
        if canvas_telemetry::events::Level::parse(&level).is_none() {
            return Err(format!("line {n}: unknown level {level:?}"));
        }
        str_field("target")?;
        str_field("msg")?;
        if let Some((pts, pseq)) = last {
            if (ts, seq) < (pts, pseq) {
                return Err(format!(
                    "line {n}: (ts_ns, seq) = ({ts}, {seq}) went backwards from ({pts}, {pseq})"
                ));
            }
            if seq <= pseq {
                return Err(format!("line {n}: seq {seq} not strictly after {pseq}"));
            }
        }
        last = Some((ts, seq));
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_estimates_respect_the_factor_2_bound() {
        for row in quantile_table(10_000) {
            assert!(
                row.within_factor_2,
                "{} {}: estimate {} vs exact {}",
                row.distribution, row.quantile, row.estimate, row.exact
            );
        }
    }

    #[test]
    fn quantile_table_is_deterministic() {
        let a = quantile_table(2_000);
        let b = quantile_table(2_000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.exact, x.estimate),
                (y.exact, y.estimate),
                "{} {}",
                x.distribution,
                x.quantile
            );
        }
    }

    #[test]
    fn obs_gate_flags_violations() {
        let report = ObsReport {
            iterations_per_sample: 1,
            samples_per_mode: 1,
            overhead: vec![
                OverheadRow { mode: "disabled", median_ns: 100, min_ns: 100, overhead_bp: 0 },
                OverheadRow { mode: "enabled", median_ns: 103, min_ns: 101, overhead_bp: 300 },
                OverheadRow { mode: "scoped", median_ns: 103, min_ns: 101, overhead_bp: 300 },
            ],
            quantiles: vec![QuantileRow {
                distribution: "uniform",
                quantile: "p50",
                exact: 10,
                estimate: 100,
                within_factor_2: false,
            }],
        };
        let fails = obs_gate(&report);
        assert_eq!(fails.len(), 2, "{fails:?}");
        assert!(fails[0].contains("enabled overhead 300bp"));
        assert!(fails[1].contains("factor-2"));
    }

    #[test]
    fn log_check_accepts_ordered_and_rejects_disorder() {
        let good = concat!(
            r#"{"v":"canvas-log/1","seq":1,"ts_ns":10,"level":"warn","target":"t","msg":"a"}"#,
            "\n",
            r#"{"v":"canvas-log/1","seq":2,"ts_ns":10,"level":"info","target":"t","msg":"b"}"#,
            "\n",
        );
        assert_eq!(check_log_text(good), Ok(2));
        let backwards = concat!(
            r#"{"v":"canvas-log/1","seq":5,"ts_ns":20,"level":"warn","target":"t","msg":"a"}"#,
            "\n",
            r#"{"v":"canvas-log/1","seq":6,"ts_ns":19,"level":"warn","target":"t","msg":"b"}"#,
            "\n",
        );
        assert!(check_log_text(backwards).unwrap_err().contains("went backwards"));
        let dup_seq = concat!(
            r#"{"v":"canvas-log/1","seq":5,"ts_ns":20,"level":"warn","target":"t","msg":"a"}"#,
            "\n",
            r#"{"v":"canvas-log/1","seq":5,"ts_ns":21,"level":"warn","target":"t","msg":"b"}"#,
            "\n",
        );
        assert!(check_log_text(dup_seq).unwrap_err().contains("not strictly"));
        assert!(check_log_text(r#"{"v":"canvas-log/1","seq":1}"#).unwrap_err().contains("ts_ns"));
        assert!(check_log_text(r#"{"v":"canvas-log/2","seq":1}"#).unwrap_err().contains("schema"));
        assert!(check_log_text(
            r#"{"v":"canvas-log/1","seq":1,"ts_ns":1,"level":"loud","target":"t","msg":"m"}"#
        )
        .unwrap_err()
        .contains("unknown level"));
    }
}
