//! E14: overload behavior of the `canvas serve` TCP front-end.
//!
//! A deterministic recorded request mix — mixed tenants, mixed cold/warm
//! programs, an LCG-fixed arrival order — is replayed *open-loop* (requests
//! are sent on a wall-clock schedule regardless of response progress, like
//! real clients) against an in-process [`canvas_incr::net::serve_listener`]
//! bound to a loopback port. The same mix runs at 1x, 4x, and 16x the
//! calibrated service capacity; each point reports offered load, shed
//! rate, admitted-request latency quantiles, throughput, and the
//! certificate cache's hit/occupancy counters scraped in-band.
//!
//! Wall-clock numbers are measured, never baseline-gated. The `--gate`
//! mode enforces the *robustness shape* instead: at 1x the daemon sheds
//! (almost) nothing; at 16x it sheds deterministically-in-band rather
//! than queueing without bound, the p99 of *admitted* requests stays
//! within the bounded queue's worth of service times, and the hot cache
//! never exceeds its byte budget.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use canvas_incr::json::{obj, Json};
use canvas_incr::net::serve_listener;
use canvas_incr::service::ServeConfig;

/// Worker pool size of the daemon under test.
pub const WORKERS: usize = 2;
/// Bounded queue capacity of the daemon under test.
pub const QUEUE_CAP: usize = 8;
/// Hot-tier byte budget of the daemon under test.
pub const CACHE_BYTES: u64 = 64 * 1024;
/// Requests per load point.
pub const REQUESTS_PER_POINT: usize = 120;
/// Load multipliers swept, relative to the calibrated capacity.
pub const LOADS: [u64; 3] = [1, 4, 16];

/// One load point of the sweep.
#[derive(Clone, Debug)]
pub struct OverloadPoint {
    /// Load multiplier (1, 4, 16).
    pub load: u64,
    /// Requests sent.
    pub offered: u64,
    /// Requests answered with a real verdict (admitted and finished).
    pub admitted: u64,
    /// Requests answered in-band with `shed: true`.
    pub shed: u64,
    /// Median round-trip of admitted requests.
    pub p50: Duration,
    /// 99th-percentile round-trip of admitted requests.
    pub p99: Duration,
    /// Wall-clock of the whole point (first send to last response).
    pub wall: Duration,
    /// `memory_bytes` of the hot cache tier, scraped after the point.
    pub cache_bytes: u64,
    /// Cache hits scraped after the point (cumulative for the daemon).
    pub cache_hits: u64,
    /// Cache misses scraped after the point (cumulative for the daemon).
    pub cache_misses: u64,
    /// Cache evictions scraped after the point (cumulative for the daemon).
    pub cache_evictions: u64,
}

/// The full E14 report.
#[derive(Clone, Debug)]
pub struct OverloadReport {
    /// Calibrated mean service time of one cold certify.
    pub service: Duration,
    /// The swept points, one per entry of [`LOADS`].
    pub points: Vec<OverloadPoint>,
}

/// One client program variant. Certificate cache keys fingerprint the
/// canonical *IR*, so variants must differ structurally: the statement
/// counts (not literals) encode both the load point and the variant slot.
/// `load` extra `add` calls make higher load points work harder per
/// request; the variant slot walks 31 distinct `next()` counts, so ~3/4
/// of a 120-request point re-hits a structure it already certified — the
/// cold/warm mix.
fn variant_source(load: u64, variant: usize) -> String {
    let adds = "s.add(\\\"x\\\"); ".repeat(load.max(1) as usize);
    let nexts = "i.next(); ".repeat(1 + variant);
    format!(
        "class Main {{ static void main() {{ Set s = new Set(); {adds}\
         Iterator i = s.iterator(); {nexts}}} }}"
    )
}

/// The variant slot for request `k`: a fixed LCG walk over 31 structures.
fn variant_slot(k: usize) -> usize {
    (k.wrapping_mul(7919).wrapping_add(17)) % 31
}

/// The deterministic request mix for one load point: tenants rotate, the
/// program variant walks the LCG.
fn mix_line(load: u64, k: usize) -> String {
    let tenants = ["acme", "blue", "cyan", "dune"];
    format!(
        "{{\"id\":{k},\"cmd\":\"certify\",\"source\":\"{}\",\"tenant\":\"{}\"}}",
        variant_source(load, variant_slot(k)),
        tenants[k % 4]
    )
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn scrape_cache(
    reader: &mut impl BufRead,
    stream: &mut TcpStream,
) -> Result<(u64, u64, u64, u64), String> {
    writeln!(stream, "{{\"id\":0,\"cmd\":\"stats\"}}").map_err(|e| e.to_string())?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let doc = Json::parse(&line).map_err(|e| format!("stats response: {e}"))?;
    let cache = doc.get("cache").ok_or("stats response has no cache object")?;
    let int = |k: &str| match cache.get(k) {
        Some(Json::Int(n)) => Ok(*n),
        other => Err(format!("stats cache.{k}: {other:?}")),
    };
    Ok((int("memory_bytes")?, int("hits")?, int("misses")?, int("evictions")?))
}

/// Runs the full sweep against an in-process daemon on a loopback port.
///
/// # Errors
///
/// A human-readable message when the harness itself fails (bind, connect,
/// or protocol violations); overload responses are *data*, not errors.
pub fn collect_overload() -> Result<OverloadReport, String> {
    let config = ServeConfig {
        workers: WORKERS,
        queue_cap: QUEUE_CAP,
        cache_bytes: Some(CACHE_BYTES),
        default_deadline_ms: Some(10_000),
        ..ServeConfig::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener.local_addr().map_err(|e| format!("local addr: {e}"))?;
    let server = std::thread::spawn(move || serve_listener(listener, &config));

    let result = (|| {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        // without NODELAY the one-line request/response pattern trips
        // Nagle-vs-delayed-ACK and every round trip costs ~40ms
        let _ = stream.set_nodelay(true);
        let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);

        // calibration: closed-loop replay of the same variant-size
        // distribution the load points use (at load 1), so the measured
        // mean matches the offered work
        let calib_n = 24usize;
        let calib_start = Instant::now();
        for k in 0..calib_n {
            writeln!(stream, "{}", mix_line(1, k)).map_err(|e| e.to_string())?;
            let mut line = String::new();
            reader.read_line(&mut line).map_err(|e| e.to_string())?;
        }
        let service = calib_start.elapsed() / calib_n as u32;
        let service = service.max(Duration::from_micros(50));

        let mut points = Vec::new();
        for load in LOADS {
            // capacity ≈ workers/service; "1x" targets 60% utilization so
            // the gate at 1x is not sitting exactly on the knife edge
            let interval = Duration::from_nanos(
                (service.as_nanos() as f64 / (0.6 * WORKERS as f64 * load as f64)) as u64,
            );
            let n = REQUESTS_PER_POINT;
            let start = Instant::now();
            let mut latencies = Vec::with_capacity(n);
            let mut shed = 0u64;
            // open loop: the sender keeps its arrival schedule regardless
            // of response progress; send timestamps flow to the reader
            // over a channel (responses come back in request order)
            let (ts_tx, ts_rx) = std::sync::mpsc::channel::<Instant>();
            let mut wstream = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
            std::thread::scope(|scope| -> Result<(), String> {
                let sender = scope.spawn(move || -> Result<(), String> {
                    for k in 0..n {
                        let due = start + interval * k as u32;
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        ts_tx.send(Instant::now()).map_err(|e| e.to_string())?;
                        writeln!(wstream, "{}", mix_line(load, k)).map_err(|e| e.to_string())?;
                    }
                    Ok(())
                });
                for _ in 0..n {
                    let sent = ts_rx.recv().map_err(|_| "sender died mid-point".to_string())?;
                    let mut line = String::new();
                    reader.read_line(&mut line).map_err(|e| e.to_string())?;
                    let arrived = Instant::now();
                    if line.contains("\"shed\":true") {
                        shed += 1;
                    } else {
                        latencies.push(arrived.saturating_duration_since(sent));
                    }
                }
                sender.join().map_err(|_| "sender panicked".to_string())?
            })?;
            let wall = start.elapsed();
            latencies.sort_unstable();
            let (cache_bytes, cache_hits, cache_misses, cache_evictions) =
                scrape_cache(&mut reader, &mut stream)?;
            points.push(OverloadPoint {
                load,
                offered: n as u64,
                admitted: latencies.len() as u64,
                shed,
                p50: percentile(&latencies, 0.50),
                p99: percentile(&latencies, 0.99),
                wall,
                cache_bytes,
                cache_hits,
                cache_misses,
                cache_evictions,
            });
        }
        writeln!(stream, "{{\"id\":0,\"cmd\":\"shutdown\"}}").map_err(|e| e.to_string())?;
        let mut line = String::new();
        let _ = reader.read_line(&mut line);
        Ok(OverloadReport { service, points })
    })();

    match server.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(format!("serve loop failed: {e}")),
        Err(_) => return Err("serve loop panicked".to_string()),
    }
    result
}

/// Gate violations for `--gate` mode; empty = pass.
pub fn gate_overload(r: &OverloadReport) -> Vec<String> {
    let mut fails = Vec::new();
    for p in &r.points {
        if p.admitted + p.shed != p.offered {
            fails.push(format!(
                "{}x: {} admitted + {} shed != {} offered (a response went missing)",
                p.load, p.admitted, p.shed, p.offered
            ));
        }
        if p.cache_bytes > CACHE_BYTES {
            fails.push(format!(
                "{}x: hot cache occupancy {} exceeds the {CACHE_BYTES}-byte budget",
                p.load, p.cache_bytes
            ));
        }
    }
    if let Some(p1) = r.points.iter().find(|p| p.load == 1) {
        // ≤ 2% shed at nominal load
        if p1.shed * 50 > p1.offered {
            fails.push(format!(
                "1x: shed {} of {} offered (expected ~0 at nominal load)",
                p1.shed, p1.offered
            ));
        }
    }
    if let Some(p16) = r.points.iter().find(|p| p.load == 16) {
        if p16.shed == 0 {
            fails.push("16x: nothing shed at 16x offered load (queue must be unbounded?)".into());
        }
        // admitted requests wait at most ~(queue+workers) service times;
        // the factor-8 slack absorbs scheduling noise on shared CI
        let bound = r.service * ((QUEUE_CAP + WORKERS) as u32) * 8;
        if p16.p99 > bound {
            fails.push(format!(
                "16x: admitted p99 {:?} exceeds the bounded-queue ceiling {:?} (service {:?})",
                p16.p99, bound, r.service
            ));
        }
    }
    fails
}

/// The stable `canvas-bench-overload/1` document (integers only).
pub fn overload_to_json(r: &OverloadReport) -> Json {
    let ns = |d: Duration| Json::Int(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    let points = Json::Arr(
        r.points
            .iter()
            .map(|p| {
                let throughput_rps = if p.wall.is_zero() {
                    0
                } else {
                    (p.admitted as u128 * 1_000_000_000 / p.wall.as_nanos().max(1)) as u64
                };
                // integer-only schema: the shed *rate* ships as per-10000
                let shed_per_10000 = (p.shed * 10_000).checked_div(p.offered).unwrap_or(0);
                obj(vec![
                    ("load", Json::Int(p.load)),
                    ("offered", Json::Int(p.offered)),
                    ("admitted", Json::Int(p.admitted)),
                    ("shed", Json::Int(p.shed)),
                    ("shed_per_10000", Json::Int(shed_per_10000)),
                    ("p50_ns", ns(p.p50)),
                    ("p99_ns", ns(p.p99)),
                    ("wall_ns", ns(p.wall)),
                    ("throughput_rps", Json::Int(throughput_rps)),
                    (
                        "cache",
                        obj(vec![
                            ("memory_bytes", Json::Int(p.cache_bytes)),
                            ("budget_bytes", Json::Int(CACHE_BYTES)),
                            ("hits", Json::Int(p.cache_hits)),
                            ("misses", Json::Int(p.cache_misses)),
                            ("evictions", Json::Int(p.cache_evictions)),
                        ]),
                    ),
                ])
            })
            .collect(),
    );
    obj(vec![
        ("schema", Json::Str("canvas-bench-overload/1".to_string())),
        ("workers", Json::Int(WORKERS as u64)),
        ("queue", Json::Int(QUEUE_CAP as u64)),
        ("cache_budget_bytes", Json::Int(CACHE_BYTES)),
        ("service_ns", ns(r.service)),
        ("points", points),
    ])
}

/// E14 as text.
pub fn render_overload(r: &OverloadReport) -> String {
    use std::fmt::Write as _;
    let mut out = crate::render_header(
        "E14: serve overload sweep (open-loop replay; admission control + shedding)",
    );
    let _ = writeln!(
        out,
        "daemon: {WORKERS} worker(s), queue {QUEUE_CAP}, cache budget {CACHE_BYTES} bytes; \
         calibrated service {}",
        crate::fmt_duration(r.service)
    );
    let _ = writeln!(
        out,
        "{:>5} {:>8} {:>9} {:>6} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "load", "offered", "admitted", "shed", "shed%", "p50", "p99", "cache-bytes", "hit-rate"
    );
    for p in &r.points {
        let lookups = p.cache_hits + p.cache_misses;
        let hit_rate = (p.cache_hits * 100).checked_div(lookups).unwrap_or(0);
        let _ = writeln!(
            out,
            "{:>4}x {:>8} {:>9} {:>6} {:>7}% {:>10} {:>10} {:>12} {:>9}%",
            p.load,
            p.offered,
            p.admitted,
            p.shed,
            p.shed * 100 / p.offered.max(1),
            crate::fmt_duration(p.p50),
            crate::fmt_duration(p.p99),
            p.cache_bytes,
            hit_rate
        );
    }
    out
}
