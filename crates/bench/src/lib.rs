//! Evaluation tables and figures (paper §7; experiment index in DESIGN.md).
//!
//! Each function regenerates one table/figure of the evaluation as plain
//! data; the `eval` binary renders them as text tables, and EXPERIMENTS.md
//! records the measured outcomes against the paper's claims.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use canvas_core::{Certifier, CertifyError, Engine, PreparedProgram};
use canvas_suite::{corpus, generators, Benchmark};

/// One row of the precision table (experiment E4): a benchmark × engine
/// cell with the usual soundness/precision accounting.
#[derive(Clone, Debug)]
pub struct PrecisionCell {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Engine.
    pub engine: Engine,
    /// Number of potential violations reported.
    pub reported: usize,
    /// Ground-truth errors in the benchmark.
    pub real: usize,
    /// Real errors *not* reported (must be 0 for a sound engine).
    pub missed: usize,
    /// Reports at non-error lines.
    pub false_alarms: usize,
    /// Analysis time.
    pub time: Duration,
    /// `None` when the engine errored (e.g. state budget).
    pub failed: Option<String>,
}

/// Runs one engine on one benchmark, with whole-program coverage.
pub fn run_cell(certifier: &Certifier, b: &Benchmark, engine: Engine) -> PrecisionCell {
    match canvas_minijava::Program::parse(b.source, certifier.spec()) {
        Ok(program) => {
            let prepared = PreparedProgram::new(&program);
            run_cell_prepared(certifier, b, &program, &prepared, engine)
        }
        Err(e) => failed_cell(b, engine, CertifyError::from(e).to_string()),
    }
}

/// Runs one engine on one parsed benchmark, reusing `prepared`'s transform
/// caches — several engines (possibly on different worker threads) then
/// compute each boolean-program / TVP translation only once.
pub fn run_cell_prepared(
    certifier: &Certifier,
    b: &Benchmark,
    program: &canvas_minijava::Program,
    prepared: &PreparedProgram,
    engine: Engine,
) -> PrecisionCell {
    let truth: BTreeSet<u32> = b.truth().into_iter().collect();
    match certifier.certify_program_prepared(program, prepared, engine) {
        Ok(report) => {
            let reported: BTreeSet<u32> = report.lines().into_iter().collect();
            PrecisionCell {
                benchmark: b.name,
                engine,
                reported: reported.len(),
                real: truth.len(),
                missed: truth.difference(&reported).count(),
                false_alarms: reported.difference(&truth).count(),
                time: report.stats.duration,
                failed: None,
            }
        }
        Err(e) => failed_cell(b, engine, e.to_string()),
    }
}

fn failed_cell(b: &Benchmark, engine: Engine, why: String) -> PrecisionCell {
    let truth: BTreeSet<u32> = b.truth().into_iter().collect();
    PrecisionCell {
        benchmark: b.name,
        engine,
        reported: 0,
        real: truth.len(),
        missed: truth.len(),
        false_alarms: 0,
        time: Duration::ZERO,
        failed: Some(why),
    }
}

/// Worker count for the parallel suite driver: `CANVAS_EVAL_THREADS` when
/// set (use `1` to force the sequential order), else the machine's
/// parallelism.
fn worker_count(jobs: usize) -> usize {
    let n = std::env::var("CANVAS_EVAL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    n.min(jobs).max(1)
}

/// The full precision table (E4): all benchmarks × all engines.
///
/// Cells run concurrently on scoped worker threads. Each benchmark is parsed
/// and prepared once (one [`PreparedProgram`] shared by all engines), each
/// spec's abstraction is derived once, and the returned order is
/// deterministic regardless of scheduling: corpus order × engine-registry
/// order, exactly as the sequential driver produced it.
pub fn precision_table() -> Vec<PrecisionCell> {
    let benchmarks = corpus();
    let engines = Engine::all();

    // one certifier per spec kind (the derivation runs once per spec)
    let mut certifiers: Vec<(canvas_suite::SpecKind, Certifier)> = Vec::new();
    for b in &benchmarks {
        if !certifiers.iter().any(|(k, _)| *k == b.spec) {
            let c = Certifier::from_spec(b.spec.spec()).expect("built-in specs derive");
            certifiers.push((b.spec, c));
        }
    }
    let cert_idx: Vec<usize> = benchmarks
        .iter()
        .map(|b| certifiers.iter().position(|(k, _)| *k == b.spec).expect("certifier built"))
        .collect();

    // one parsed program + transform cache per benchmark, shared by engines
    let parsed: Vec<Result<(canvas_minijava::Program, PreparedProgram), String>> = benchmarks
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            canvas_minijava::Program::parse(b.source, certifiers[cert_idx[bi]].1.spec())
                .map(|p| {
                    let prepared = PreparedProgram::new(&p);
                    (p, prepared)
                })
                .map_err(|e| CertifyError::from(e).to_string())
        })
        .collect();

    let jobs: Vec<(usize, Engine)> =
        (0..benchmarks.len()).flat_map(|bi| engines.iter().map(move |&e| (bi, e))).collect();
    let slots: Vec<Mutex<Option<PrecisionCell>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..worker_count(jobs.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(bi, engine)) = jobs.get(i) else { break };
                let b = &benchmarks[bi];
                let certifier = &certifiers[cert_idx[bi]].1;
                let cell = match &parsed[bi] {
                    Ok((program, prepared)) => {
                        run_cell_prepared(certifier, b, program, prepared, engine)
                    }
                    Err(why) => failed_cell(b, engine, why.clone()),
                };
                *slots[i].lock().expect("no panics while holding the slot lock") = Some(cell);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("worker did not panic").expect("every cell computed"))
        .collect()
}

/// One point of the scaling figure (E7).
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Sweep dimension value.
    pub param: usize,
    /// Control-flow edges of the generated client.
    pub edges: usize,
    /// Predicate instances (`B²`-ish).
    pub predicates: usize,
    /// FDS analysis time.
    pub time: Duration,
    /// FDS work units (edge visits).
    pub work: usize,
}

/// Sweeps the client size (number of blocks) at fixed variable count.
pub fn scaling_blocks(points: &[usize]) -> Vec<ScalingPoint> {
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    points
        .iter()
        .map(|&blocks| {
            let g = generators::scmp_blocks(blocks, 2, 0.0, 1);
            let program =
                canvas_minijava::Program::parse(&g.source, certifier.spec()).expect("generated");
            let report = certifier.certify(&program, Engine::ScmpFds).expect("fds");
            ScalingPoint {
                param: blocks,
                edges: program.edge_count(),
                predicates: report.stats.predicates,
                time: report.stats.duration,
                work: report.stats.work,
            }
        })
        .collect()
}

/// Sweeps the component-variable count (iterator ring) at fixed block count.
pub fn scaling_vars(points: &[usize]) -> Vec<ScalingPoint> {
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    points
        .iter()
        .map(|&n| {
            let g = generators::iterator_ring(n, false);
            let program =
                canvas_minijava::Program::parse(&g.source, certifier.spec()).expect("generated");
            let report = certifier.certify(&program, Engine::ScmpFds).expect("fds");
            ScalingPoint {
                param: n,
                edges: program.edge_count(),
                predicates: report.stats.predicates,
                time: report.stats.duration,
                work: report.stats.work,
            }
        })
        .collect()
}

/// One row of the derivation table (E1/E8).
#[derive(Clone, Debug)]
pub struct DerivationRow {
    /// Specification name.
    pub spec: String,
    /// §6 classification.
    pub class: canvas_easl::SpecClass,
    /// Derived family signatures, in discovery order.
    pub families: Vec<String>,
    /// WP computations performed.
    pub wp_count: usize,
    /// Family-equivalence checks performed.
    pub equiv_checks: usize,
    /// Families known after each worklist round (convergence trace).
    pub rounds: Vec<usize>,
}

/// The derivation table for all built-in specs.
pub fn derivation_table() -> Vec<DerivationRow> {
    canvas_easl::builtin::all()
        .into_iter()
        .map(|spec| {
            let class = canvas_easl::classify(&spec);
            let derived = canvas_wp::derive_abstraction(&spec).expect("built-ins derive");
            DerivationRow {
                spec: spec.name().to_string(),
                class,
                families: derived.families().iter().map(|f| f.to_string()).collect(),
                wp_count: derived.stats().wp_count,
                equiv_checks: derived.stats().equiv_checks,
                rounds: derived.stats().families_discovered.clone(),
            }
        })
        .collect()
}

/// The paper's Fig. 3 running example, shared by the eval binary, the
/// benches, and the golden tests.
pub const FIG3: &str = r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("...");
        if (true) { i1.next(); }
    }
}
"#;

/// Section header used by every eval table.
pub fn render_header(title: &str) -> String {
    format!("\n== {title} ==\n\n")
}

/// E1 as text, exactly as the `eval -- derive` subcommand prints it.
/// Deterministic (no timing, no randomness), so golden-testable.
pub fn render_derive() -> String {
    use std::fmt::Write as _;
    let mut out =
        render_header("E1: derived abstractions (paper Fig. 4 / Fig. 5; Table D rows for E8)");
    for row in derivation_table() {
        let _ = writeln!(
            out,
            "spec {:<4} class={:?} wp={} equiv-checks={} rounds={:?}",
            row.spec, row.class, row.wp_count, row.equiv_checks, row.rounds
        );
        for f in &row.families {
            let _ = writeln!(out, "    {f}");
        }
    }
    out
}

/// E2 as text, exactly as the `eval -- fig3` subcommand prints it.
/// Deterministic, so golden-testable.
pub fn render_fig3() -> String {
    use std::fmt::Write as _;
    let mut out =
        render_header("E2: Fig. 3 walkthrough (real errors at lines 10 and 13; line 11 is safe)");
    let c = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    for engine in Engine::all() {
        match c.certify_source(FIG3, engine) {
            Ok(r) => {
                let _ = writeln!(out, "{:<26} -> lines {:?}", engine.to_string(), r.lines());
            }
            Err(e) => {
                let _ = writeln!(out, "{:<26} -> {e}", engine.to_string());
            }
        }
    }
    out
}

/// Renders a duration compactly.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_millis() >= 10 {
        format!("{:.0}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_table_shape() {
        let rows = derivation_table();
        assert_eq!(rows.len(), 4);
        let cmp = &rows[0];
        assert_eq!(cmp.spec, "cmp");
        assert_eq!(cmp.families.len(), 4);
        assert!(cmp.families[0].starts_with("stale"));
    }

    #[test]
    fn scaling_monotone_in_size() {
        let pts = scaling_blocks(&[2, 8]);
        assert!(pts[1].edges > pts[0].edges);
        assert!(pts[1].work >= pts[0].work);
    }

    #[test]
    fn specialized_engines_sound_on_corpus() {
        // soundness: no specialized engine may miss a real error
        for cell in precision_table() {
            if cell.engine.specialized() && cell.failed.is_none() {
                assert_eq!(
                    cell.missed, 0,
                    "{} missed {} error(s) on {}",
                    cell.engine, cell.missed, cell.benchmark
                );
            }
        }
    }
}
