//! Evaluation tables and figures (paper §7; experiment index in DESIGN.md).
//!
//! Each function regenerates one table/figure of the evaluation as plain
//! data; the `eval` binary renders them as text tables, and EXPERIMENTS.md
//! records the measured outcomes against the paper's claims.

use std::collections::BTreeSet;
use std::time::Duration;

use canvas_core::{Certifier, CertifyError, Engine};
use canvas_suite::{corpus, generators, Benchmark};

/// One row of the precision table (experiment E4): a benchmark × engine
/// cell with the usual soundness/precision accounting.
#[derive(Clone, Debug)]
pub struct PrecisionCell {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Engine.
    pub engine: Engine,
    /// Number of potential violations reported.
    pub reported: usize,
    /// Ground-truth errors in the benchmark.
    pub real: usize,
    /// Real errors *not* reported (must be 0 for a sound engine).
    pub missed: usize,
    /// Reports at non-error lines.
    pub false_alarms: usize,
    /// Analysis time.
    pub time: Duration,
    /// `None` when the engine errored (e.g. state budget).
    pub failed: Option<String>,
}

/// Runs one engine on one benchmark, with whole-program coverage.
pub fn run_cell(certifier: &Certifier, b: &Benchmark, engine: Engine) -> PrecisionCell {
    let truth: BTreeSet<u32> = b.truth().into_iter().collect();
    match certifier
        .certify_source_program(b.source, engine)
    {
        Ok(report) => {
            let reported: BTreeSet<u32> = report.lines().into_iter().collect();
            PrecisionCell {
                benchmark: b.name,
                engine,
                reported: reported.len(),
                real: truth.len(),
                missed: truth.difference(&reported).count(),
                false_alarms: reported.difference(&truth).count(),
                time: report.stats.duration,
                failed: None,
            }
        }
        Err(e) => PrecisionCell {
            benchmark: b.name,
            engine,
            reported: 0,
            real: truth.len(),
            missed: truth.len(),
            false_alarms: 0,
            time: Duration::ZERO,
            failed: Some(e.to_string()),
        },
    }
}

/// Extension: whole-program certify directly from source.
trait CertifyProgramSource {
    fn certify_source_program(
        &self,
        src: &str,
        engine: Engine,
    ) -> Result<canvas_core::Report, CertifyError>;
}

impl CertifyProgramSource for Certifier {
    fn certify_source_program(
        &self,
        src: &str,
        engine: Engine,
    ) -> Result<canvas_core::Report, CertifyError> {
        let program = canvas_minijava::Program::parse(src, self.spec())?;
        self.certify_program(&program, engine)
    }
}

/// The full precision table (E4): all benchmarks × all engines.
pub fn precision_table() -> Vec<PrecisionCell> {
    let mut out = Vec::new();
    let mut certifiers: Vec<(canvas_suite::SpecKind, Certifier)> = Vec::new();
    for b in corpus() {
        let certifier = match certifiers.iter().find(|(k, _)| *k == b.spec) {
            Some((_, c)) => c.clone(),
            None => {
                let c = Certifier::from_spec(b.spec.spec()).expect("built-in specs derive");
                certifiers.push((b.spec, c.clone()));
                c
            }
        };
        for engine in Engine::all() {
            out.push(run_cell(&certifier, &b, engine));
        }
    }
    out
}

/// One point of the scaling figure (E7).
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Sweep dimension value.
    pub param: usize,
    /// Control-flow edges of the generated client.
    pub edges: usize,
    /// Predicate instances (`B²`-ish).
    pub predicates: usize,
    /// FDS analysis time.
    pub time: Duration,
    /// FDS work units (edge visits).
    pub work: usize,
}

/// Sweeps the client size (number of blocks) at fixed variable count.
pub fn scaling_blocks(points: &[usize]) -> Vec<ScalingPoint> {
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    points
        .iter()
        .map(|&blocks| {
            let g = generators::scmp_blocks(blocks, 2, 0.0, 1);
            let program =
                canvas_minijava::Program::parse(&g.source, certifier.spec()).expect("generated");
            let report = certifier.certify(&program, Engine::ScmpFds).expect("fds");
            ScalingPoint {
                param: blocks,
                edges: program.edge_count(),
                predicates: report.stats.predicates,
                time: report.stats.duration,
                work: report.stats.work,
            }
        })
        .collect()
}

/// Sweeps the component-variable count (iterator ring) at fixed block count.
pub fn scaling_vars(points: &[usize]) -> Vec<ScalingPoint> {
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    points
        .iter()
        .map(|&n| {
            let g = generators::iterator_ring(n, false);
            let program =
                canvas_minijava::Program::parse(&g.source, certifier.spec()).expect("generated");
            let report = certifier.certify(&program, Engine::ScmpFds).expect("fds");
            ScalingPoint {
                param: n,
                edges: program.edge_count(),
                predicates: report.stats.predicates,
                time: report.stats.duration,
                work: report.stats.work,
            }
        })
        .collect()
}

/// One row of the derivation table (E1/E8).
#[derive(Clone, Debug)]
pub struct DerivationRow {
    /// Specification name.
    pub spec: String,
    /// §6 classification.
    pub class: canvas_easl::SpecClass,
    /// Derived family signatures, in discovery order.
    pub families: Vec<String>,
    /// WP computations performed.
    pub wp_count: usize,
    /// Family-equivalence checks performed.
    pub equiv_checks: usize,
    /// Families known after each worklist round (convergence trace).
    pub rounds: Vec<usize>,
}

/// The derivation table for all built-in specs.
pub fn derivation_table() -> Vec<DerivationRow> {
    canvas_easl::builtin::all()
        .into_iter()
        .map(|spec| {
            let class = canvas_easl::classify(&spec);
            let derived = canvas_wp::derive_abstraction(&spec).expect("built-ins derive");
            DerivationRow {
                spec: spec.name().to_string(),
                class,
                families: derived.families().iter().map(|f| f.to_string()).collect(),
                wp_count: derived.stats().wp_count,
                equiv_checks: derived.stats().equiv_checks,
                rounds: derived.stats().families_discovered.clone(),
            }
        })
        .collect()
}

/// Renders a duration compactly.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_millis() >= 10 {
        format!("{:.0}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_table_shape() {
        let rows = derivation_table();
        assert_eq!(rows.len(), 4);
        let cmp = &rows[0];
        assert_eq!(cmp.spec, "cmp");
        assert_eq!(cmp.families.len(), 4);
        assert!(cmp.families[0].starts_with("stale"));
    }

    #[test]
    fn scaling_monotone_in_size() {
        let pts = scaling_blocks(&[2, 8]);
        assert!(pts[1].edges > pts[0].edges);
        assert!(pts[1].work >= pts[0].work);
    }

    #[test]
    fn specialized_engines_sound_on_corpus() {
        // soundness: no specialized engine may miss a real error
        for cell in precision_table() {
            if cell.engine.specialized() && cell.failed.is_none() {
                assert_eq!(
                    cell.missed, 0,
                    "{} missed {} error(s) on {}",
                    cell.engine, cell.missed, cell.benchmark
                );
            }
        }
    }
}
