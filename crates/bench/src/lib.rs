//! Evaluation tables and figures (paper §7; experiment index in DESIGN.md).
//!
//! Each function regenerates one table/figure of the evaluation as plain
//! data; the `eval` binary renders them as text tables, and EXPERIMENTS.md
//! records the measured outcomes against the paper's claims.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use canvas_core::{Certifier, CertifyError, Engine, PreparedProgram};
use canvas_suite::{corpus, generators, Benchmark};

// the JSON support moved into `canvas-incr` (the certificate store and
// serve protocol share it); re-exported so `canvas_bench::json` callers
// keep working
pub use canvas_incr::json;

pub mod fixpoint;
pub mod fleet;
pub mod obs;
pub mod overload;

static SUITE_JOBS: canvas_telemetry::Counter = canvas_telemetry::Counter::new("suite.jobs");
// Worker count follows the machine (or CANVAS_EVAL_THREADS), so it is
// recorded but never baseline-gated.
static SUITE_WORKERS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::non_deterministic("suite.workers");
static SUITE_DRIVER_TIME: canvas_telemetry::Timer = canvas_telemetry::Timer::new("suite.driver");
static SUITE_JOB_TIME: canvas_telemetry::Timer = canvas_telemetry::Timer::new("suite.job");
static SUITE_WORKER_BUSY: canvas_telemetry::Timer =
    canvas_telemetry::Timer::new("suite.worker_busy");
static SUITE_WORKER_IDLE: canvas_telemetry::Timer =
    canvas_telemetry::Timer::new("suite.worker_idle");
static SUITE_POISONED: canvas_telemetry::Counter =
    canvas_telemetry::Counter::non_deterministic("suite.poisoned_cases");

/// One row of the precision table (experiment E4): a benchmark × engine
/// cell with the usual soundness/precision accounting.
#[derive(Clone, Debug)]
pub struct PrecisionCell {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Engine.
    pub engine: Engine,
    /// Number of potential violations reported.
    pub reported: usize,
    /// Ground-truth errors in the benchmark.
    pub real: usize,
    /// Real errors *not* reported (must be 0 for a sound engine).
    pub missed: usize,
    /// Reports at non-error lines.
    pub false_alarms: usize,
    /// Predicate instances in play (engine-reported).
    pub predicates: usize,
    /// Deterministic engine work units (edge visits, valuation transfers,
    /// structure-transformer applications — engine-specific).
    pub work: usize,
    /// Peak per-node abstract-state size (1 for single-state engines).
    pub max_states: usize,
    /// Whether a state budget degraded the result to conservative.
    pub exhausted: bool,
    /// Analysis time.
    pub time: Duration,
    /// `None` when the engine errored (e.g. state budget).
    pub failed: Option<String>,
    /// The engine panicked on this case; the panic was contained by the
    /// per-case isolation layer and the rest of the suite still ran.
    pub poisoned: bool,
    /// Per-cell telemetry attribution captured by the parallel driver
    /// (`None` when telemetry is disabled or the cell ran outside the
    /// driver). A poisoned cell still carries whatever it counted before
    /// the panic — the scope rollup is additive, never lost.
    pub scope: Option<canvas_telemetry::ScopeSnapshot>,
}

/// Runs one engine on one benchmark, with whole-program coverage.
pub fn run_cell(certifier: &Certifier, b: &Benchmark, engine: Engine) -> PrecisionCell {
    match canvas_minijava::Program::parse(b.source, certifier.spec()) {
        Ok(program) => {
            let prepared = PreparedProgram::new(&program);
            run_cell_prepared(certifier, b, &program, &prepared, engine)
        }
        Err(e) => failed_cell(b, engine, CertifyError::from(e).to_string()),
    }
}

/// Runs one engine on one parsed benchmark, reusing `prepared`'s transform
/// caches — several engines (possibly on different worker threads) then
/// compute each boolean-program / TVP translation only once.
pub fn run_cell_prepared(
    certifier: &Certifier,
    b: &Benchmark,
    program: &canvas_minijava::Program,
    prepared: &PreparedProgram,
    engine: Engine,
) -> PrecisionCell {
    let truth: BTreeSet<u32> = b.truth().into_iter().collect();
    match certifier.certify_program_prepared(program, prepared, engine) {
        Ok(report) => {
            let reported: BTreeSet<u32> = report.lines().into_iter().collect();
            PrecisionCell {
                benchmark: b.name,
                engine,
                reported: reported.len(),
                real: truth.len(),
                missed: truth.difference(&reported).count(),
                false_alarms: reported.difference(&truth).count(),
                predicates: report.stats.predicates,
                work: report.stats.work,
                max_states: report.stats.max_states,
                exhausted: report.stats.exhausted,
                time: report.stats.duration,
                failed: None,
                poisoned: false,
                scope: None,
            }
        }
        // an engine panic contained by the certifier's isolation layer is a
        // poisoned case, not an ordinary budget failure
        Err(e @ CertifyError::Panicked { .. }) => {
            SUITE_POISONED.add(1);
            PrecisionCell { poisoned: true, ..failed_cell(b, engine, e.to_string()) }
        }
        Err(e) => failed_cell(b, engine, e.to_string()),
    }
}

fn failed_cell(b: &Benchmark, engine: Engine, why: String) -> PrecisionCell {
    let truth: BTreeSet<u32> = b.truth().into_iter().collect();
    PrecisionCell {
        benchmark: b.name,
        engine,
        reported: 0,
        real: truth.len(),
        missed: truth.len(),
        false_alarms: 0,
        predicates: 0,
        work: 0,
        max_states: 0,
        exhausted: false,
        time: Duration::ZERO,
        failed: Some(why),
        poisoned: false,
        scope: None,
    }
}

/// A cell for a case whose engine run panicked: reported as failed with the
/// contained panic message, and flagged so the E4 rendering can call it out.
fn poisoned_cell(b: &Benchmark, engine: Engine, message: String) -> PrecisionCell {
    SUITE_POISONED.add(1);
    PrecisionCell { poisoned: true, ..failed_cell(b, engine, format!("panicked: {message}")) }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The full precision table (E4): all benchmarks × all engines.
///
/// Cells run concurrently on scoped worker threads. Each benchmark is parsed
/// and prepared once (one [`PreparedProgram`] shared by all engines), each
/// spec's abstraction is derived once, and the returned order is
/// deterministic regardless of scheduling: corpus order × engine-registry
/// order, exactly as the sequential driver produced it.
pub fn precision_table() -> Vec<PrecisionCell> {
    let _span = SUITE_DRIVER_TIME.span();
    let benchmarks = corpus();
    let engines = Engine::all();

    // one certifier per spec kind (the derivation runs once per spec)
    let mut certifiers: Vec<(canvas_suite::SpecKind, Certifier)> = Vec::new();
    for b in &benchmarks {
        if !certifiers.iter().any(|(k, _)| *k == b.spec) {
            let c = Certifier::from_spec(b.spec.spec()).expect("built-in specs derive");
            certifiers.push((b.spec, c));
        }
    }
    let cert_idx: Vec<usize> = benchmarks
        .iter()
        .map(|b| certifiers.iter().position(|(k, _)| *k == b.spec).expect("certifier built"))
        .collect();

    // one parsed program + transform cache per benchmark, shared by engines
    let parsed: Vec<Result<(canvas_minijava::Program, PreparedProgram), String>> = benchmarks
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            canvas_minijava::Program::parse(b.source, certifiers[cert_idx[bi]].1.spec())
                .map(|p| {
                    let prepared = PreparedProgram::new(&p);
                    (p, prepared)
                })
                .map_err(|e| CertifyError::from(e).to_string())
        })
        .collect();

    let jobs: Vec<(usize, Engine)> =
        (0..benchmarks.len()).flat_map(|bi| engines.iter().map(move |&e| (bi, e))).collect();
    let slots: Vec<Mutex<Option<PrecisionCell>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = canvas_suite::worker_count(jobs.len());
    SUITE_JOBS.add(jobs.len() as u64);
    SUITE_WORKERS.add(workers as u64);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let spawned = Instant::now();
                let mut busy = Duration::ZERO;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(bi, engine)) = jobs.get(i) else { break };
                    let _job = SUITE_JOB_TIME.span();
                    let started = Instant::now();
                    let b = &benchmarks[bi];
                    let certifier = &certifiers[cert_idx[bi]].1;
                    // isolate the case: a panicking engine poisons this one
                    // cell, the worker survives, and every other cell is
                    // still computed and re-aggregated deterministically.
                    // The scope wraps the catch_unwind so a poisoned cell
                    // still rolls up whatever it counted before the panic.
                    let scope =
                        canvas_telemetry::Scope::new(format!("{}::{}", b.name, engine.abbrev()));
                    let mut cell = match &parsed[bi] {
                        Ok((program, prepared)) => {
                            let _in_scope = scope.enter();
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                run_cell_prepared(certifier, b, program, prepared, engine)
                            }))
                            .unwrap_or_else(|payload| {
                                poisoned_cell(b, engine, panic_message(payload.as_ref()))
                            })
                        }
                        Err(why) => failed_cell(b, engine, why.clone()),
                    };
                    if canvas_telemetry::enabled() {
                        cell.scope = Some(scope.snapshot());
                    }
                    *slots[i].lock().expect("no panics while holding the slot lock") = Some(cell);
                    busy += started.elapsed();
                }
                SUITE_WORKER_BUSY.observe(busy);
                SUITE_WORKER_IDLE.observe(spawned.elapsed().saturating_sub(busy));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("worker did not panic").expect("every cell computed"))
        .collect()
}

/// One point of the scaling figure (E7).
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Sweep dimension value.
    pub param: usize,
    /// Control-flow edges of the generated client.
    pub edges: usize,
    /// Predicate instances (`B²`-ish).
    pub predicates: usize,
    /// FDS analysis time.
    pub time: Duration,
    /// FDS work units (edge visits).
    pub work: usize,
}

/// Sweeps the client size (number of blocks) at fixed variable count.
pub fn scaling_blocks(points: &[usize]) -> Vec<ScalingPoint> {
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    points
        .iter()
        .map(|&blocks| {
            let g = generators::scmp_blocks(blocks, 2, 0.0, 1);
            let program =
                canvas_minijava::Program::parse(&g.source, certifier.spec()).expect("generated");
            let report = certifier.certify(&program, Engine::ScmpFds).expect("fds");
            ScalingPoint {
                param: blocks,
                edges: program.edge_count(),
                predicates: report.stats.predicates,
                time: report.stats.duration,
                work: report.stats.work,
            }
        })
        .collect()
}

/// Sweeps the component-variable count (iterator ring) at fixed block count.
pub fn scaling_vars(points: &[usize]) -> Vec<ScalingPoint> {
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    points
        .iter()
        .map(|&n| {
            let g = generators::iterator_ring(n, false);
            let program =
                canvas_minijava::Program::parse(&g.source, certifier.spec()).expect("generated");
            let report = certifier.certify(&program, Engine::ScmpFds).expect("fds");
            ScalingPoint {
                param: n,
                edges: program.edge_count(),
                predicates: report.stats.predicates,
                time: report.stats.duration,
                work: report.stats.work,
            }
        })
        .collect()
}

/// One row of the derivation table (E1/E8).
#[derive(Clone, Debug)]
pub struct DerivationRow {
    /// Specification name.
    pub spec: String,
    /// §6 classification.
    pub class: canvas_easl::SpecClass,
    /// Derived family signatures, in discovery order.
    pub families: Vec<String>,
    /// WP computations performed.
    pub wp_count: usize,
    /// Family-equivalence checks performed.
    pub equiv_checks: usize,
    /// Families known after each worklist round (convergence trace).
    pub rounds: Vec<usize>,
}

/// The derivation table for all built-in specs.
pub fn derivation_table() -> Vec<DerivationRow> {
    canvas_easl::builtin::all()
        .into_iter()
        .map(|spec| {
            let class = canvas_easl::classify(&spec);
            let derived = canvas_wp::derive_abstraction(&spec).expect("built-ins derive");
            DerivationRow {
                spec: spec.name().to_string(),
                class,
                families: derived.families().iter().map(|f| f.to_string()).collect(),
                wp_count: derived.stats().wp_count,
                equiv_checks: derived.stats().equiv_checks,
                rounds: derived.stats().families_discovered.clone(),
            }
        })
        .collect()
}

/// The paper's Fig. 3 running example, shared by the eval binary, the
/// benches, and the golden tests.
pub const FIG3: &str = r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("...");
        if (true) { i1.next(); }
    }
}
"#;

/// Section header used by every eval table.
pub fn render_header(title: &str) -> String {
    format!("\n== {title} ==\n\n")
}

/// E1 as text, exactly as the `eval -- derive` subcommand prints it.
/// Deterministic (no timing, no randomness), so golden-testable.
pub fn render_derive() -> String {
    use std::fmt::Write as _;
    let mut out =
        render_header("E1: derived abstractions (paper Fig. 4 / Fig. 5; Table D rows for E8)");
    for row in derivation_table() {
        let _ = writeln!(
            out,
            "spec {:<4} class={:?} wp={} equiv-checks={} rounds={:?}",
            row.spec, row.class, row.wp_count, row.equiv_checks, row.rounds
        );
        for f in &row.families {
            let _ = writeln!(out, "    {f}");
        }
    }
    out
}

/// E2 as text, exactly as the `eval -- fig3` subcommand prints it.
/// Deterministic, so golden-testable.
pub fn render_fig3() -> String {
    use std::fmt::Write as _;
    let mut out =
        render_header("E2: Fig. 3 walkthrough (real errors at lines 10 and 13; line 11 is safe)");
    let c = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    for engine in Engine::all() {
        match c.certify_source(FIG3, engine) {
            Ok(r) => match r.verdict.reason() {
                Some(reason) => {
                    let _ = writeln!(out, "{:<26} -> inconclusive ({reason})", engine.to_string());
                }
                None => {
                    let _ = writeln!(out, "{:<26} -> lines {:?}", engine.to_string(), r.lines());
                }
            },
            Err(e) => {
                let _ = writeln!(out, "{:<26} -> {e}", engine.to_string());
            }
        }
    }
    out
}

/// E2 with witness evidence, exactly as `eval -- fig3 --explain` prints it:
/// the specialized FDS certifier run with provenance recording on, every
/// violation rendered as a rustc-style labeled diagnostic whose secondary
/// labels replay the witness trace (create → mutate → stale use).
/// Deterministic, so golden-testable.
pub fn render_fig3_explained() -> String {
    let mut out =
        render_header("E2 (explained): Fig. 3 witness traces (specialized FDS certifier)");
    let c =
        Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives").with_explain(true);
    let r = c.certify_source(FIG3, Engine::ScmpFds).expect("fig3 certifies");
    out.push_str(&r.render_explained("fig3.mj", FIG3));
    out
}

/// Renders a duration compactly.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_millis() >= 10 {
        format!("{:.0}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    }
}

/// Everything `eval --metrics-json` emits: the E1 derivation rows, the
/// E4/E5 precision+timing cells, and a telemetry snapshot of the whole run.
pub struct EvalMetrics {
    /// E1 derivation rows.
    pub derivation: Vec<DerivationRow>,
    /// All benchmark × engine cells.
    pub cells: Vec<PrecisionCell>,
    /// E10 incremental-certification phases (cold → warm → edited).
    pub incremental: Vec<IncrPhase>,
    /// Pipeline telemetry accumulated over the run.
    pub snapshot: canvas_telemetry::Snapshot,
}

/// Runs the full evaluation (derivation + precision + incremental tables)
/// with telemetry enabled and captures the resulting metrics. The
/// incremental stage runs sequentially, so its `incr.cache_*` counters are
/// deterministic and baseline-gated.
pub fn collect_eval_metrics() -> EvalMetrics {
    let was = canvas_telemetry::enabled();
    canvas_telemetry::set_enabled(true);
    canvas_telemetry::reset();
    let derivation = derivation_table();
    let cells = precision_table();
    let incremental = incremental_table();
    serve_overload_exercise();
    let snapshot = canvas_telemetry::snapshot();
    canvas_telemetry::set_enabled(was);
    EvalMetrics { derivation, cells, incremental, snapshot }
}

/// Drives the serve front-end's shedding and cache-eviction counters to
/// exact, scheduling-independent values so `serve.shed_total`,
/// `serve.deadline_total`, `incr.cache_evictions` and `incr.cache_bytes`
/// are baseline-gated alongside the analysis work counters. Everything
/// runs on one worker over the stdio loop, so the shed decisions are a
/// pure function of the scripted request order.
fn serve_overload_exercise() {
    use canvas_incr::service::{serve, ServeConfig};
    // single-line, JSON-escaped Fig. 3 client for NDJSON embedding
    const FIG3_JSON: &str = "class Main { static void main() { Set v = new Set(); \
         Iterator i = v.iterator(); v.add(\\\"x\\\"); i.next(); } }";
    let run = |script: String, config: &ServeConfig| {
        let mut out = Vec::new();
        serve(std::io::Cursor::new(script), &mut out, config)
            .expect("the overload exercise serves");
    };
    // exactly 3 tenant sheds: burst 2, no refill, 5 certifies, one tenant
    let mut script = String::new();
    for id in 1..=5 {
        script.push_str(&format!(
            "{{\"id\":{id},\"cmd\":\"certify\",\"source\":\"{FIG3_JSON}\",\"tenant\":\"acme\"}}\n"
        ));
    }
    script.push_str("{\"id\":6,\"cmd\":\"shutdown\"}\n");
    run(
        script,
        &ServeConfig { workers: 1, tenant_burst: 2, tenant_rate: 0, ..ServeConfig::default() },
    );
    // exactly 1 deadline shed: a zero-millisecond budget has always
    // expired by the time the worker picks the request up
    run(
        format!(
            "{{\"id\":1,\"cmd\":\"certify\",\"source\":\"{FIG3_JSON}\",\"budget_ms\":0}}\n\
             {{\"id\":2,\"cmd\":\"shutdown\"}}\n"
        ),
        &ServeConfig { workers: 1, ..ServeConfig::default() },
    );
    // deterministic evictions: 8 structurally distinct programs (cache
    // keys fingerprint the canonical IR, so the *statement counts* must
    // differ) through a hot tier too small to hold them; one worker, one
    // connection, so the store (and therefore eviction) order is exactly
    // the request order
    let mut script = String::new();
    for id in 1..=8u64 {
        let nexts = "i.next(); ".repeat(id as usize);
        let source = format!(
            "class Main {{ static void main() {{ Set s = new Set(); \
             Iterator i = s.iterator(); {nexts}}} }}"
        );
        script.push_str(&format!("{{\"id\":{id},\"cmd\":\"certify\",\"source\":\"{source}\"}}\n"));
    }
    script.push_str("{\"id\":9,\"cmd\":\"shutdown\"}\n");
    run(script, &ServeConfig { workers: 1, cache_bytes: Some(1024), ..ServeConfig::default() });
}

/// Builds the stable `canvas-bench-eval/1` document. Everything under
/// `"deterministic"` must be byte-identical run-to-run (CI gates it against
/// `bench/baseline.json`); everything under `"measured"` — timings and
/// scheduling-dependent counters — is recorded but never gated.
pub fn metrics_to_json(m: &EvalMetrics) -> json::Json {
    use json::{obj, Json};
    let derivation = Json::Arr(
        m.derivation
            .iter()
            .map(|r| {
                obj(vec![
                    ("spec", Json::Str(r.spec.clone())),
                    ("class", Json::Str(format!("{:?}", r.class))),
                    ("families", Json::Int(r.families.len() as u64)),
                    ("wp_count", Json::Int(r.wp_count as u64)),
                    ("equiv_checks", Json::Int(r.equiv_checks as u64)),
                    ("rounds", Json::Arr(r.rounds.iter().map(|&n| Json::Int(n as u64)).collect())),
                ])
            })
            .collect(),
    );
    let det_cells = Json::Arr(
        m.cells
            .iter()
            .map(|c| {
                obj(vec![
                    ("benchmark", Json::Str(c.benchmark.to_string())),
                    ("engine", Json::Str(c.engine.to_string())),
                    ("reported", Json::Int(c.reported as u64)),
                    ("real", Json::Int(c.real as u64)),
                    ("missed", Json::Int(c.missed as u64)),
                    ("false_alarms", Json::Int(c.false_alarms as u64)),
                    ("predicates", Json::Int(c.predicates as u64)),
                    ("work", Json::Int(c.work as u64)),
                    ("max_states", Json::Int(c.max_states as u64)),
                    ("exhausted", Json::Bool(c.exhausted)),
                    ("failed", Json::Bool(c.failed.is_some())),
                ])
            })
            .collect(),
    );
    let det_counters = Json::Obj(
        m.snapshot
            .deterministic_counters()
            .iter()
            .map(|c| (c.name.clone(), Json::Int(c.value)))
            .collect(),
    );
    let timed_cells = Json::Arr(
        m.cells
            .iter()
            .map(|c| {
                obj(vec![
                    ("benchmark", Json::Str(c.benchmark.to_string())),
                    ("engine", Json::Str(c.engine.to_string())),
                    ("nanos", Json::Int(c.time.as_nanos().min(u128::from(u64::MAX)) as u64)),
                ])
            })
            .collect(),
    );
    let nondet_counters = Json::Obj(
        m.snapshot
            .counters
            .iter()
            .filter(|c| !c.deterministic && c.value > 0)
            .map(|c| (c.name.clone(), Json::Int(c.value)))
            .collect(),
    );
    let timers = Json::Arr(
        m.snapshot
            .timers
            .iter()
            .filter(|t| t.count > 0)
            .map(|t| {
                obj(vec![
                    ("name", Json::Str(t.name.clone())),
                    ("count", Json::Int(t.count)),
                    ("total_nanos", Json::Int(t.sum)),
                    ("max_nanos", Json::Int(t.max)),
                ])
            })
            .collect(),
    );
    let det_incremental = Json::Arr(
        m.incremental
            .iter()
            .map(|p| {
                obj(vec![
                    ("engine", Json::Str(p.engine.to_string())),
                    ("phase", Json::Str(p.phase.to_string())),
                    ("hits", Json::Int(p.hits)),
                    ("misses", Json::Int(p.misses)),
                    ("digest_ok", Json::Bool(p.digest_ok)),
                ])
            })
            .collect(),
    );
    obj(vec![
        ("schema", Json::Str("canvas-bench-eval/2".to_string())),
        (
            "deterministic",
            obj(vec![
                ("derivation", derivation),
                ("cells", det_cells),
                ("incremental", det_incremental),
                ("counters", det_counters),
            ]),
        ),
        (
            "measured",
            obj(vec![("cells", timed_cells), ("counters", nondet_counters), ("timers", timers)]),
        ),
    ])
}

/// Compares the `"deterministic"` subtrees of two `canvas-bench-eval/1`
/// documents; returns the drift as human-readable lines (empty = no drift).
pub fn deterministic_drift(current: &json::Json, baseline: &json::Json) -> Vec<String> {
    match (current.get("deterministic"), baseline.get("deterministic")) {
        (Some(c), Some(b)) => json::diff(c, b),
        _ => vec!["missing \"deterministic\" section in one of the documents".to_string()],
    }
}

/// Deterministic per-engine work counters on the Fig. 3 example, as pinned
/// by the `metrics_fig3` golden test: telemetry is reset before each engine,
/// so every block shows exactly that engine's work (including its share of
/// the front-end transforms, recomputed per engine).
pub fn render_fig3_metrics() -> String {
    use std::fmt::Write as _;
    let was = canvas_telemetry::enabled();
    canvas_telemetry::set_enabled(true);
    let c = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    let program = canvas_minijava::Program::parse(FIG3, c.spec()).expect("fig3 parses");
    let mut out = render_header("E2 counters: deterministic work per engine on Fig. 3");
    for engine in Engine::all() {
        canvas_telemetry::reset();
        let _ = c.certify(&program, engine);
        let snap = canvas_telemetry::snapshot();
        let _ = writeln!(out, "{engine}");
        for cs in snap.deterministic_counters() {
            let _ = writeln!(out, "    {:<28} {}", cs.name, cs.value);
        }
    }
    canvas_telemetry::set_enabled(was);
    canvas_telemetry::reset();
    out
}

/// One row of the certificate table (E11): a benchmark × engine pair with
/// the cost of *emitting* a proof-carrying certificate (a full fixpoint
/// run) against the cost of *checking* it (one replay pass in the
/// engine-free `canvas-check` crate) and the certificate's size.
#[derive(Clone, Debug)]
pub struct CertRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Emitting engine.
    pub engine: Engine,
    /// Wall-clock time of the certificate-emitting certification run.
    pub certify_time: Duration,
    /// Wall-clock time of the `canvas-check` replay.
    pub check_time: Duration,
    /// Size of the serialized `canvas-cert/1` text, in bytes.
    pub cert_bytes: usize,
    /// Whether every cell carries a replayable solution.
    pub checkable: bool,
    /// Whether the checker accepted the certificate as internally valid.
    pub accepted: bool,
    /// The checker's verdict (accepted and no violations implied).
    pub certified: bool,
    /// `Some` when the emitting run errored (e.g. state budget).
    pub failed: Option<String>,
}

/// E11: emit + re-check a certificate for every corpus benchmark under each
/// certificate-capable engine. Everything except the timings is
/// deterministic; the point of the table is `check ≪ certify` with modest
/// certificate sizes (the abstraction-carrying-code trade).
pub fn certificate_table() -> Vec<CertRow> {
    let benchmarks = corpus();
    let engines: Vec<Engine> =
        Engine::all().into_iter().filter(|e| e.certificate_unsupported().is_none()).collect();
    let mut certifiers: Vec<(canvas_suite::SpecKind, Certifier)> = Vec::new();
    for b in &benchmarks {
        if !certifiers.iter().any(|(k, _)| *k == b.spec) {
            let c = Certifier::from_spec(b.spec.spec()).expect("built-in specs derive");
            certifiers.push((b.spec, c));
        }
    }
    let mut out = Vec::new();
    for b in &benchmarks {
        let certifier = &certifiers.iter().find(|(k, _)| *k == b.spec).expect("certifier built").1;
        let program = match canvas_minijava::Program::parse(b.source, certifier.spec()) {
            Ok(p) => p,
            Err(e) => {
                for &engine in &engines {
                    out.push(CertRow {
                        benchmark: b.name,
                        engine,
                        certify_time: Duration::ZERO,
                        check_time: Duration::ZERO,
                        cert_bytes: 0,
                        checkable: false,
                        accepted: false,
                        certified: false,
                        failed: Some(e.to_string()),
                    });
                }
                continue;
            }
        };
        for &engine in &engines {
            let start = Instant::now();
            let run = certifier.certify_with_certificate(b.source, &program, engine);
            let certify_time = start.elapsed();
            let row = match run {
                Ok((_, cert)) => {
                    let text = cert.to_text();
                    let start = Instant::now();
                    let outcome = canvas_check::check_text(
                        b.source,
                        certifier.spec(),
                        certifier.derived(),
                        &text,
                    );
                    let check_time = start.elapsed();
                    CertRow {
                        benchmark: b.name,
                        engine,
                        certify_time,
                        check_time,
                        cert_bytes: text.len(),
                        checkable: cert.checkable(),
                        accepted: outcome.is_ok(),
                        certified: outcome.map(|o| o.certified).unwrap_or(false),
                        failed: None,
                    }
                }
                Err(e) => CertRow {
                    benchmark: b.name,
                    engine,
                    certify_time,
                    check_time: Duration::ZERO,
                    cert_bytes: 0,
                    checkable: false,
                    accepted: false,
                    certified: false,
                    failed: Some(e.to_string()),
                },
            };
            out.push(row);
        }
    }
    out
}

/// One point of the E11 scaling series: a generated client large enough
/// for the fixpoint to iterate, certified end-to-end (parse + analyse +
/// emit) and re-checked end-to-end (parse + replay).
#[derive(Clone, Debug)]
pub struct CertScalePoint {
    /// Generated client size (blocks).
    pub blocks: usize,
    /// Control-flow edges of the generated client.
    pub edges: usize,
    /// End-to-end certificate emission time (parse + fixpoint + serialize).
    pub certify_time: Duration,
    /// End-to-end check time (parse + single-pass replay).
    pub check_time: Duration,
    /// Serialized certificate size in bytes.
    pub cert_bytes: usize,
    /// The checker accepted and the client is violation-free.
    pub certified: bool,
}

/// The E11 scaling series on generated CMP clients (FDS certifier). Both
/// sides are timed end-to-end from source text, so the comparison charges
/// parsing and the boolean-program transform to both equally; the gap that
/// remains is fixpoint iteration vs single-pass replay.
pub fn certificate_scaling(points: &[usize]) -> Vec<CertScalePoint> {
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    points
        .iter()
        .map(|&blocks| {
            let g = generators::scmp_blocks(blocks, 2, 0.0, 1);
            let start = Instant::now();
            let program =
                canvas_minijava::Program::parse(&g.source, certifier.spec()).expect("generated");
            let (_, cert) = certifier
                .certify_with_certificate(&g.source, &program, Engine::ScmpFds)
                .expect("generated clients certify");
            let text = cert.to_text();
            let certify_time = start.elapsed();
            let start = Instant::now();
            let outcome =
                canvas_check::check_text(&g.source, certifier.spec(), certifier.derived(), &text)
                    .expect("genuine certificate");
            let check_time = start.elapsed();
            CertScalePoint {
                blocks,
                edges: program.edge_count(),
                certify_time,
                check_time,
                cert_bytes: text.len(),
                certified: outcome.certified,
            }
        })
        .collect()
}

/// E11 as text: per-benchmark certify/check/size rows and the per-engine
/// totals with the check-vs-certify speedup.
pub fn render_certs() -> String {
    use std::fmt::Write as _;
    let mut out = render_header(
        "E11: proof-carrying certificates (emit once, re-check by replay in canvas-check)",
    );
    let rows = certificate_table();
    let _ = writeln!(
        out,
        "{:<20} {:<10} {:>10} {:>10} {:>8} {:>9} {:>10}",
        "benchmark", "engine", "certify", "check", "bytes", "accepted", "certified"
    );
    for r in &rows {
        match &r.failed {
            Some(e) => {
                let _ = writeln!(out, "{:<20} {:<10} {e}", r.benchmark, r.engine.abbrev());
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<20} {:<10} {:>10} {:>10} {:>8} {:>9} {:>10}",
                    r.benchmark,
                    r.engine.abbrev(),
                    fmt_duration(r.certify_time),
                    fmt_duration(r.check_time),
                    r.cert_bytes,
                    if r.accepted { "yes" } else { "NO" },
                    if r.certified { "yes" } else { "no" }
                );
            }
        }
    }
    let _ = writeln!(out);
    for (engine, rs) in {
        let mut by: BTreeMap<String, Vec<&CertRow>> = BTreeMap::new();
        for r in &rows {
            by.entry(r.engine.to_string()).or_default().push(r);
        }
        by
    } {
        let ok: Vec<_> = rs.iter().filter(|r| r.failed.is_none()).collect();
        let certify: Duration = ok.iter().map(|r| r.certify_time).sum();
        let check: Duration = ok.iter().map(|r| r.check_time).sum();
        let bytes: usize = ok.iter().map(|r| r.cert_bytes).sum();
        let accepted = ok.iter().filter(|r| r.accepted).count();
        let speedup = if check.as_nanos() == 0 {
            f64::INFINITY
        } else {
            certify.as_secs_f64() / check.as_secs_f64()
        };
        let _ = writeln!(
            out,
            "{engine:<26} certify {}  check {} ({speedup:.1}x faster)  \
             {accepted}/{} accepted  {bytes} cert bytes total",
            fmt_duration(certify),
            fmt_duration(check),
            ok.len(),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "scaling (generated CMP clients, FDS; both sides end-to-end):");
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>10} {:>10} {:>9} {:>8}",
        "blocks", "edges", "certify", "check", "check/ce", "bytes"
    );
    for p in certificate_scaling(&[8, 16, 32, 64, 128]) {
        let ratio = if p.certify_time.as_nanos() == 0 {
            f64::NAN
        } else {
            p.check_time.as_secs_f64() / p.certify_time.as_secs_f64()
        };
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>10} {:>10} {:>8.0}% {:>8}",
            p.blocks,
            p.edges,
            fmt_duration(p.certify_time),
            fmt_duration(p.check_time),
            ratio * 100.0,
            p.cert_bytes
        );
    }
    out
}

/// The E10 incremental workload: four methods, with the *edited* method
/// last and the edit confined to one line, so no other method's span (and
/// hence no other fingerprint) shifts.
pub const INCR_BASE: &str = r#"
class Main {
    static void fill(Set s) {
        s.add("a");
        s.add("b");
    }
    static void scan(Set s) {
        for (Iterator i = s.iterator(); i.hasNext(); ) { i.next(); }
    }
    static void main() {
        Set v = new Set();
        Main.fill(v);
        Main.scan(v);
        Iterator late = v.iterator();
        v.add("c");
        if (true) { late.next(); }
    }
    static void audit(Set s) {
        Iterator i = s.iterator();
        s.add("x");
        i.next();
    }
}
"#;

/// The one-line, span-preserving edit applied to [`INCR_BASE`]'s `audit`.
pub const INCR_EDIT_FROM: &str = "s.add(\"x\");";
/// See [`INCR_EDIT_FROM`].
pub const INCR_EDIT_TO: &str = "s.add(\"x\"); s.add(\"y\");";

/// One phase of the E10 incremental-certification experiment.
#[derive(Clone, Debug)]
pub struct IncrPhase {
    /// Engine under test.
    pub engine: Engine,
    /// `cold` (empty cache), `warm` (identical rerun) or `edited`
    /// (one-line edit to one method).
    pub phase: &'static str,
    /// Cells answered from the certificate cache.
    pub hits: u64,
    /// Cells analysed fresh.
    pub misses: u64,
    /// Whether the (partially) cached report is semantically identical to
    /// an uncached run — the invalidation-soundness check.
    pub digest_ok: bool,
    /// Wall-clock time of the cached certification call.
    pub time: Duration,
    /// `Some` when the engine errored on this workload.
    pub failed: Option<String>,
}

/// E10: cold → warm → edited-one-method certification through one shared
/// in-memory certificate cache, per engine. Everything except `time` is
/// deterministic (cache keys are content hashes; the traffic pattern is a
/// function of the workload alone), so the hit/miss counts and digest
/// checks are baseline-gated.
pub fn incremental_table() -> Vec<IncrPhase> {
    use canvas_incr::{report_digest, store::CertCache, IncrementalCertifier};
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
    let reference = certifier.clone();
    let inc = IncrementalCertifier::new(certifier, CertCache::in_memory());
    let base = canvas_minijava::Program::parse(INCR_BASE, inc.certifier().spec())
        .expect("incr base parses");
    let edited_src = INCR_BASE.replace(INCR_EDIT_FROM, INCR_EDIT_TO);
    assert_ne!(edited_src, INCR_BASE, "the edit marker must match");
    let edited = canvas_minijava::Program::parse(&edited_src, inc.certifier().spec())
        .expect("incr edited parses");
    let mut out = Vec::new();
    for engine in Engine::all() {
        for (phase, program) in [("cold", &base), ("warm", &base), ("edited", &edited)] {
            let start = Instant::now();
            let run = inc.certify_program_cached_with_stats(program, engine);
            let time = start.elapsed();
            let row = match run {
                Ok((report, stats)) => {
                    // invalidation soundness: the cached answer must match
                    // a from-scratch certification of the same program
                    let digest_ok = match reference.certify_program(program, engine) {
                        Ok(fresh) => report_digest(&fresh) == report_digest(&report),
                        Err(_) => false,
                    };
                    IncrPhase {
                        engine,
                        phase,
                        hits: stats.hits,
                        misses: stats.misses,
                        digest_ok,
                        time,
                        failed: None,
                    }
                }
                Err(e) => IncrPhase {
                    engine,
                    phase,
                    hits: 0,
                    misses: 0,
                    digest_ok: false,
                    time,
                    failed: Some(e.to_string()),
                },
            };
            out.push(row);
        }
    }
    out
}

/// E10 as text: the per-engine cold/warm/edited phases with their cache
/// traffic and the warm-vs-cold wall-clock speedup.
pub fn render_incr() -> String {
    use std::fmt::Write as _;
    let mut out =
        render_header("E10: incremental certification (content-addressed certificate cache)");
    let rows = incremental_table();
    let _ = writeln!(
        out,
        "{:<26} {:>8} {:>6} {:>8} {:>10} {:>8}",
        "engine", "phase", "hits", "misses", "time", "sound"
    );
    for r in &rows {
        match &r.failed {
            Some(e) => {
                let _ = writeln!(out, "{:<26} {:>8} {e}", r.engine.to_string(), r.phase);
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<26} {:>8} {:>6} {:>8} {:>10} {:>8}",
                    r.engine.to_string(),
                    r.phase,
                    r.hits,
                    r.misses,
                    fmt_duration(r.time),
                    if r.digest_ok { "yes" } else { "NO" }
                );
            }
        }
    }
    let total = |phase: &str| -> Duration {
        rows.iter().filter(|r| r.phase == phase && r.failed.is_none()).map(|r| r.time).sum()
    };
    let (cold, warm, edited) = (total("cold"), total("warm"), total("edited"));
    let speedup = |fast: Duration| {
        if fast.as_nanos() == 0 {
            f64::INFINITY
        } else {
            cold.as_secs_f64() / fast.as_secs_f64()
        }
    };
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "totals: cold {}  warm {} ({:.1}x)  edited-one-method {} ({:.1}x)",
        fmt_duration(cold),
        fmt_duration(warm),
        speedup(warm),
        fmt_duration(edited),
        speedup(edited),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_table_shape() {
        let rows = derivation_table();
        assert_eq!(rows.len(), 4);
        let cmp = &rows[0];
        assert_eq!(cmp.spec, "cmp");
        assert_eq!(cmp.families.len(), 4);
        assert!(cmp.families[0].starts_with("stale"));
    }

    #[test]
    fn scaling_monotone_in_size() {
        let pts = scaling_blocks(&[2, 8]);
        assert!(pts[1].edges > pts[0].edges);
        assert!(pts[1].work >= pts[0].work);
    }

    #[test]
    fn incremental_table_shape_and_soundness() {
        let rows = incremental_table();
        assert_eq!(rows.len(), Engine::all().len() * 3);
        for r in &rows {
            assert!(r.failed.is_none(), "{} {}: {:?}", r.engine, r.phase, r.failed);
            assert!(r.digest_ok, "{} {}: cached result diverged", r.engine, r.phase);
            match r.phase {
                "cold" => assert_eq!(r.hits, 0, "{}", r.engine),
                "warm" => assert_eq!(r.misses, 0, "{}", r.engine),
                "edited" => {
                    // exactly the edited method's cell re-runs (the
                    // interprocedural engine has a single whole-program cell)
                    assert_eq!(r.misses, 1, "{}", r.engine);
                }
                other => panic!("unexpected phase {other}"),
            }
        }
    }

    #[test]
    fn certificate_table_checks_everything_it_emits() {
        let rows = certificate_table();
        assert!(!rows.is_empty());
        let mut checkable = 0;
        for r in &rows {
            if r.failed.is_some() {
                continue; // state-budget failures are allowed on the corpus
            }
            if r.checkable {
                checkable += 1;
                assert!(
                    r.accepted,
                    "{} {}: checker rejected a genuine cert",
                    r.benchmark, r.engine
                );
                assert!(r.cert_bytes > 0, "{} {}: empty cert", r.benchmark, r.engine);
            } else {
                assert!(!r.accepted, "{} {}: accepted an uncheckable cert", r.benchmark, r.engine);
            }
        }
        assert!(checkable >= 25, "only {checkable} checkable certificates on the corpus");
    }

    #[test]
    fn specialized_engines_sound_on_corpus() {
        // soundness: no specialized engine may miss a real error
        for cell in precision_table() {
            if cell.engine.specialized() && cell.failed.is_none() {
                assert_eq!(
                    cell.missed, 0,
                    "{} missed {} error(s) on {}",
                    cell.engine, cell.missed, cell.benchmark
                );
            }
        }
    }
}
