//! E12: bit-parallel fixpoint kernel throughput and within-method delta
//! re-solve (DESIGN.md §10).
//!
//! Two experiments share this module:
//!
//! * **Kernel sweep** — the word-parallel FDS kernel vs the per-bit
//!   reference kernel on generated CMP clients of growing size. Both
//!   kernels visit the same edges in the same order and reach the same
//!   fixpoint, so edge visits / worklist pops / words touched are
//!   deterministic and baseline-gated; the wall-clock times (median of 5)
//!   are reported but never gated.
//! * **Delta re-solve** — the E10 one-line-edit workload, method by
//!   method: each method of the edited program is solved cold and again
//!   seeded from the cached solution of the base program. The seeded run
//!   must reach the same fixpoint with strictly fewer worklist pops.
//!
//! The `eval fixpoint` subcommand renders both as text, emits the
//! `canvas-bench-eval/2` document (`BENCH_fixpoint.json`), and gates the
//! deterministic section against the committed `"fixpoint"` key of
//! `bench/baseline.json`.

use std::time::{Duration, Instant};

use canvas_dataflow::delta::{self, DeltaPayload};
use canvas_dataflow::soa::stride_for;
use canvas_dataflow::{fds, DeltaSeed};
use canvas_faults::Meter;
use canvas_suite::generators;

use crate::json::{obj, Json};
use crate::{fmt_duration, render_header, INCR_BASE, INCR_EDIT_FROM, INCR_EDIT_TO};

/// One point of the E12 kernel sweep: a generated client solved by both
/// the bit-parallel and the per-bit reference FDS kernels.
#[derive(Clone, Debug)]
pub struct FixpointPoint {
    /// Sweep dimension: generated client size in blocks.
    pub blocks: usize,
    /// Boolean-program CFG edges.
    pub edges: usize,
    /// Predicate instances (row width in bits).
    pub preds: usize,
    /// `u64` words per arena row (cache-line padded above 8 words).
    pub stride: usize,
    /// Edge evaluations to the fixpoint (identical for both kernels).
    pub edge_visits: usize,
    /// Worklist pops to the fixpoint (identical for both kernels).
    pub worklist_pops: usize,
    /// Words read+written by the word kernel: `2 * stride * edge_visits`.
    pub words_touched: u64,
    /// Median-of-5 wall time of the bit-parallel kernel.
    pub word_time: Duration,
    /// Median-of-5 wall time of the per-bit reference kernel.
    pub scalar_time: Duration,
}

impl FixpointPoint {
    /// Throughput gain of the word kernel over the per-bit kernel on the
    /// same work (both kernels touch the same `words_touched` logical
    /// words, so the ratio of times is the ratio of words/sec).
    pub fn speedup(&self) -> f64 {
        if self.word_time.as_nanos() == 0 {
            f64::INFINITY
        } else {
            self.scalar_time.as_secs_f64() / self.word_time.as_secs_f64()
        }
    }

    /// Word-kernel throughput in words per second.
    pub fn words_per_sec(&self) -> f64 {
        if self.word_time.as_nanos() == 0 {
            f64::INFINITY
        } else {
            self.words_touched as f64 / self.word_time.as_secs_f64()
        }
    }
}

fn median_of<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Sweeps generated CMP clients — the loopy [`generators::scmp_loop_blocks`]
/// shape, whose staleness facts grow around back edges so the solvers
/// genuinely iterate instead of visiting every edge once — timing both
/// kernels (median of 5) and recording the deterministic work units.
pub fn fixpoint_sweep(points: &[usize]) -> Vec<FixpointPoint> {
    let spec = canvas_easl::builtin::cmp();
    let derived = canvas_wp::derive_abstraction(&spec).expect("cmp derives");
    points
        .iter()
        .map(|&blocks| {
            let g = generators::scmp_loop_blocks(blocks, 2);
            let program = canvas_minijava::Program::parse(&g.source, &spec).expect("generated");
            let main = program.main_method().expect("main");
            let bp = canvas_abstraction::transform_method(
                &program,
                main,
                &spec,
                &derived,
                canvas_abstraction::EntryAssumption::Clean,
            );
            let res = fds::analyze(&bp);
            let reference = fds::analyze_reference(&bp);
            assert_eq!(res.to_bitsets(), reference.may_one, "kernels disagree at {blocks} blocks");
            let stride = stride_for(bp.preds.len());
            let word_time = median_of(5, || {
                std::hint::black_box(fds::analyze(std::hint::black_box(&bp)));
            });
            let scalar_time = median_of(5, || {
                std::hint::black_box(fds::analyze_reference(std::hint::black_box(&bp)));
            });
            FixpointPoint {
                blocks,
                edges: bp.edges.len(),
                preds: bp.preds.len(),
                stride,
                edge_visits: res.edge_visits,
                worklist_pops: res.worklist_pops,
                words_touched: 2 * stride as u64 * res.edge_visits as u64,
                word_time,
                scalar_time,
            }
        })
        .collect()
}

/// One row of the E12 delta experiment: a method of the edited E10
/// workload solved cold and seeded from the base program's solution.
#[derive(Clone, Debug)]
pub struct DeltaRow {
    /// Qualified method name.
    pub method: String,
    /// Whether the method's body actually changed between the versions.
    pub edited: bool,
    /// The seed passed validation and the delta kernel ran.
    pub seeded: bool,
    /// Worklist pops of the cold solve.
    pub cold_pops: usize,
    /// Worklist pops of the seeded solve (0 affected nodes pops nothing).
    pub delta_pops: usize,
    /// Edge visits of the cold solve.
    pub cold_visits: usize,
    /// Edge visits of the seeded solve.
    pub delta_visits: usize,
    /// The seeded run reached the same fixpoint as the cold run.
    pub same_fixpoint: bool,
}

/// Runs the delta experiment on the E10 workload: every method of the
/// edited program, seeded from the base program's cached solutions.
pub fn delta_table() -> Vec<DeltaRow> {
    let spec = canvas_easl::builtin::cmp();
    let derived = canvas_wp::derive_abstraction(&spec).expect("cmp derives");
    let base = canvas_minijava::Program::parse(INCR_BASE, &spec).expect("incr base parses");
    let edited_src = INCR_BASE.replace(INCR_EDIT_FROM, INCR_EDIT_TO);
    let edited = canvas_minijava::Program::parse(&edited_src, &spec).expect("incr edited parses");
    let transform = |program: &canvas_minijava::Program, m: &canvas_minijava::MethodIr| {
        let entry = if m.name == "main" {
            canvas_abstraction::EntryAssumption::Clean
        } else {
            canvas_abstraction::EntryAssumption::Unknown
        };
        canvas_abstraction::transform_method(program, m, &spec, &derived, entry)
    };
    let gov = Meter::disarmed();
    edited
        .methods()
        .iter()
        .map(|m| {
            let name = m.qualified_name();
            let new_bp = transform(&edited, m);
            let cold = fds::analyze(&new_bp);
            let old_m = base.method_named(&name).expect("method survives the edit");
            let old_bp = transform(&base, old_m);
            let old_res = fds::analyze(&old_bp);
            let payload = DeltaPayload::of(&old_bp);
            let edited = payload != DeltaPayload::of(&new_bp);
            let seed = DeltaSeed {
                payload,
                preds: old_bp.preds.len() as u32,
                solution: (0..old_bp.node_count).map(|r| old_res.row_ones(r)).collect(),
            };
            let warm = delta::analyze_delta(&new_bp, &seed, &gov).expect("disarmed meter");
            let (seeded, delta_pops, delta_visits, same_fixpoint) = match warm {
                Some(res) => (true, res.worklist_pops, res.edge_visits, res.same_solution(&cold)),
                None => (false, cold.worklist_pops, cold.edge_visits, true),
            };
            DeltaRow {
                method: name,
                edited,
                seeded,
                cold_pops: cold.worklist_pops,
                delta_pops,
                cold_visits: cold.edge_visits,
                delta_visits,
                same_fixpoint,
            }
        })
        .collect()
}

/// The full E12 result set.
pub struct FixpointMetrics {
    /// The kernel sweep.
    pub sweep: Vec<FixpointPoint>,
    /// The delta experiment.
    pub delta: Vec<DeltaRow>,
}

/// The default E12 sweep sizes (the acceptance window is 8–128 blocks).
pub const FIXPOINT_SWEEP: &[usize] = &[8, 16, 32, 64, 128];

/// Runs both E12 experiments at the default sizes.
pub fn collect_fixpoint_metrics() -> FixpointMetrics {
    FixpointMetrics { sweep: fixpoint_sweep(FIXPOINT_SWEEP), delta: delta_table() }
}

/// Builds the stable `canvas-bench-eval/2` document for `eval fixpoint`.
/// Everything under `"deterministic"` must be byte-identical run-to-run
/// (CI gates it against the `"fixpoint"` key of `bench/baseline.json`);
/// the `"measured"` wall times are recorded but never gated.
pub fn fixpoint_to_json(m: &FixpointMetrics) -> Json {
    let det_sweep = Json::Arr(
        m.sweep
            .iter()
            .map(|p| {
                obj(vec![
                    ("blocks", Json::Int(p.blocks as u64)),
                    ("edges", Json::Int(p.edges as u64)),
                    ("preds", Json::Int(p.preds as u64)),
                    ("stride", Json::Int(p.stride as u64)),
                    ("edge_visits", Json::Int(p.edge_visits as u64)),
                    ("worklist_pops", Json::Int(p.worklist_pops as u64)),
                    ("words_touched", Json::Int(p.words_touched)),
                ])
            })
            .collect(),
    );
    let det_delta = Json::Arr(
        m.delta
            .iter()
            .map(|r| {
                obj(vec![
                    ("method", Json::Str(r.method.clone())),
                    ("seeded", Json::Bool(r.seeded)),
                    ("cold_pops", Json::Int(r.cold_pops as u64)),
                    ("delta_pops", Json::Int(r.delta_pops as u64)),
                    ("cold_visits", Json::Int(r.cold_visits as u64)),
                    ("delta_visits", Json::Int(r.delta_visits as u64)),
                    ("same_fixpoint", Json::Bool(r.same_fixpoint)),
                ])
            })
            .collect(),
    );
    // work-unit counters computed from the results themselves (not a
    // telemetry snapshot), so they are deterministic by construction
    let counters = Json::Obj(vec![
        ("fds.words_touched".to_string(), Json::Int(m.sweep.iter().map(|p| p.words_touched).sum())),
        (
            "incr.delta_seeded".to_string(),
            Json::Int(m.delta.iter().filter(|r| r.seeded).count() as u64),
        ),
        (
            "incr.delta_fallback".to_string(),
            Json::Int(m.delta.iter().filter(|r| !r.seeded).count() as u64),
        ),
    ]);
    let measured = Json::Arr(
        m.sweep
            .iter()
            .map(|p| {
                obj(vec![
                    ("blocks", Json::Int(p.blocks as u64)),
                    (
                        "word_nanos",
                        Json::Int(p.word_time.as_nanos().min(u128::from(u64::MAX)) as u64),
                    ),
                    (
                        "scalar_nanos",
                        Json::Int(p.scalar_time.as_nanos().min(u128::from(u64::MAX)) as u64),
                    ),
                ])
            })
            .collect(),
    );
    obj(vec![
        ("schema", Json::Str("canvas-bench-eval/2".to_string())),
        (
            "deterministic",
            obj(vec![("sweep", det_sweep), ("delta", det_delta), ("counters", counters)]),
        ),
        ("measured", obj(vec![("sweep", measured)])),
    ])
}

/// Compares an `eval fixpoint` document against the committed baseline:
/// the document's `"deterministic"` subtree against the baseline's
/// top-level `"fixpoint"` key (a sibling of the main eval's
/// `"deterministic"` section, so the two gates never collide).
pub fn fixpoint_drift(current: &Json, baseline: &Json) -> Vec<String> {
    match (current.get("deterministic"), baseline.get("fixpoint")) {
        (Some(c), Some(b)) => crate::json::diff(c, b),
        (None, _) => vec!["missing \"deterministic\" section in the current document".to_string()],
        (_, None) => vec!["missing \"fixpoint\" section in the baseline".to_string()],
    }
}

/// E12 as text, exactly as `eval fixpoint` prints it.
pub fn render_fixpoint(m: &FixpointMetrics) -> String {
    use std::fmt::Write as _;
    let mut out = render_header(
        "E12: bit-parallel FDS kernel vs per-bit reference (wall times: median of 5)",
    );
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>7} {:>7} {:>8} {:>7} {:>10} {:>10} {:>10} {:>8} {:>12}",
        "blocks",
        "edges",
        "preds",
        "words",
        "visits",
        "pops",
        "touched",
        "word",
        "scalar",
        "speedup",
        "words/s"
    );
    for p in &m.sweep {
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>7} {:>7} {:>8} {:>7} {:>10} {:>10} {:>10} {:>7.1}x {:>12.2e}",
            p.blocks,
            p.edges,
            p.preds,
            p.stride,
            p.edge_visits,
            p.worklist_pops,
            p.words_touched,
            fmt_duration(p.word_time),
            fmt_duration(p.scalar_time),
            p.speedup(),
            p.words_per_sec(),
        );
    }
    let word_total: Duration = m.sweep.iter().map(|p| p.word_time).sum();
    let scalar_total: Duration = m.sweep.iter().map(|p| p.scalar_time).sum();
    if word_total.as_nanos() > 0 {
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>7} {:>7} {:>8} {:>7} {:>10} {:>10} {:>10} {:>7.1}x  (sweep aggregate)",
            "total",
            "",
            "",
            "",
            "",
            "",
            "",
            fmt_duration(word_total),
            fmt_duration(scalar_total),
            scalar_total.as_secs_f64() / word_total.as_secs_f64(),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "delta re-solve (E10 one-line edit; seeded from the base solution):");
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>10} {:>11} {:>12} {:>13} {:>9}",
        "method", "seeded", "cold-pops", "delta-pops", "cold-visits", "delta-visits", "fixpoint"
    );
    for r in &m.delta {
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:>10} {:>11} {:>12} {:>13} {:>9}",
            r.method,
            if r.seeded { "yes" } else { "NO" },
            r.cold_pops,
            r.delta_pops,
            r.cold_visits,
            r.delta_visits,
            if r.same_fixpoint { "same" } else { "DIVERGED" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_work_units_match_both_kernels_and_scale() {
        let pts = fixpoint_sweep(&[4, 8]);
        assert!(pts[1].edges > pts[0].edges);
        assert!(pts[1].words_touched > pts[0].words_touched);
        for p in &pts {
            assert_eq!(p.words_touched, 2 * p.stride as u64 * p.edge_visits as u64);
        }
    }

    #[test]
    fn delta_rows_seed_and_do_strictly_less_work() {
        let rows = delta_table();
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.seeded, "{}: seed rejected", r.method);
            assert!(r.same_fixpoint, "{}: delta diverged", r.method);
            assert!(
                r.delta_pops < r.cold_pops,
                "{}: delta pops {} !< cold pops {}",
                r.method,
                r.delta_pops,
                r.cold_pops
            );
        }
    }

    #[test]
    fn fixpoint_document_round_trips_and_gates_itself() {
        let m = FixpointMetrics { sweep: fixpoint_sweep(&[4]), delta: delta_table() };
        let doc = fixpoint_to_json(&m);
        let text = doc.render();
        let back = Json::parse(&text).expect("parses");
        // a baseline whose "fixpoint" key is this run's deterministic
        // section must gate clean
        let baseline = obj(vec![(
            "fixpoint",
            back.get("deterministic").expect("deterministic section").clone(),
        )]);
        assert!(fixpoint_drift(&back, &baseline).is_empty());
        // and a drifted counter must be caught
        let drifted = Json::parse(&text.replace("\"edge_visits\":", "\"edge_visits0\":"))
            .expect("still JSON");
        let base2 = obj(vec![(
            "fixpoint",
            drifted.get("deterministic").expect("deterministic section").clone(),
        )]);
        assert!(!fixpoint_drift(&back, &base2).is_empty());
    }
}
