//! Fuzzing the EASL spec parser: garbage input yields errors, never panics,
//! and the built-in specs parse deterministically.

use canvas_easl::Spec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn garbage_specs_never_panic(src in ".{0,200}") {
        let _ = Spec::parse("fuzz", &src);
    }

    #[test]
    fn spec_token_soup_never_panics(toks in prop::collection::vec(
        prop_oneof![
            Just("class"), Just("requires"), Just("return"), Just("new"),
            Just("void"), Just("Set"), Just("Version"), Just("Iterator"),
            Just("ver"), Just("defVer"), Just("set"), Just("this"), Just("s"),
            Just("{"), Just("}"), Just("("), Just(")"), Just(";"), Just("."),
            Just(","), Just("="), Just("=="), Just("!="), Just("&&"), Just("!"),
        ],
        0..50,
    )) {
        let _ = Spec::parse("fuzz", &toks.join(" "));
    }
}

#[test]
fn builtins_parse_deterministically() {
    for (name, src) in [
        ("cmp", canvas_easl::builtin::CMP_SOURCE),
        ("grp", canvas_easl::builtin::GRP_SOURCE),
        ("imp", canvas_easl::builtin::IMP_SOURCE),
        ("aop", canvas_easl::builtin::AOP_SOURCE),
    ] {
        let a = Spec::parse(name, src).unwrap();
        let b = Spec::parse(name, src).unwrap();
        assert_eq!(a, b);
    }
}
