//! The typed EASL abstract syntax tree.

use std::fmt;

use canvas_logic::{AccessPath, Formula, TypeName, Var};

use crate::{parser, EaslError};

/// A complete EASL specification: a named set of component classes.
#[derive(Clone, PartialEq, Debug)]
pub struct Spec {
    name: String,
    classes: Vec<ClassSpec>,
}

impl Spec {
    /// Parses a specification from its Java-like concrete syntax.
    ///
    /// # Errors
    ///
    /// Returns an [`EaslError`] on lexical, syntactic or resolution errors
    /// (unknown types, unknown fields, `requires` not at method entry, …).
    pub fn parse(name: impl Into<String>, src: &str) -> Result<Spec, EaslError> {
        // fault-injection point: under CANVAS_FAULT=truncate-input the
        // source is cut in half, which must surface as Err, never a panic
        let src = canvas_faults::truncate_input(src);
        parser::parse_spec(name.into(), src)
    }

    /// Assembles a specification from already-built classes (used by tests
    /// and by programmatic spec construction).
    pub fn from_classes(name: impl Into<String>, classes: Vec<ClassSpec>) -> Spec {
        Spec { name: name.into(), classes }
    }

    /// The specification's name (e.g. `"cmp"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All classes, in declaration order.
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// The class names in declaration order.
    pub fn class_names(&self) -> Vec<&str> {
        self.classes.iter().map(|c| c.name().as_str()).collect()
    }

    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassSpec> {
        self.classes.iter().find(|c| c.name().as_str() == name)
    }

    /// Whether `ty` is one of the component's classes.
    pub fn is_component_type(&self, ty: &TypeName) -> bool {
        self.class(ty.as_str()).is_some()
    }

    /// The declared type of `field` in component type `owner`.
    pub fn field_type(&self, owner: &TypeName, field: &str) -> Option<TypeName> {
        self.class(owner.as_str())?.fields().iter().find(|f| f.name() == field).map(|f| *f.ty())
    }

    /// A [`canvas_logic::TypeOracle`] view of the specification's field
    /// types, for use with the model enumerator.
    pub fn oracle(&self) -> impl canvas_logic::TypeOracle + '_ {
        move |owner: &TypeName, field: &str| self.field_type(owner, field)
    }

    /// The component types clients interact with directly: classes that
    /// declare a constructor or method, or occur in a method signature.
    /// (In CMP this excludes the internal `Version` token class.)
    pub fn client_facing_types(&self) -> Vec<TypeName> {
        self.classes
            .iter()
            .filter(|c| {
                !c.methods().is_empty()
                    || self.classes.iter().any(|d| {
                        d.methods().iter().any(|m| {
                            m.ret_ty() == Some(c.name())
                                || m.params().iter().any(|(_, t)| t == c.name())
                        })
                    })
            })
            .map(|c| *c.name())
            .collect()
    }

    /// All methods of all classes, paired with their class.
    pub fn all_methods(&self) -> impl Iterator<Item = (&ClassSpec, &MethodSpec)> {
        self.classes.iter().flat_map(|c| c.methods().iter().map(move |m| (c, m)))
    }
}

/// A field declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldDecl {
    name: String,
    ty: TypeName,
}

impl FieldDecl {
    /// Creates a field declaration.
    pub fn new(name: impl Into<String>, ty: TypeName) -> Self {
        FieldDecl { name: name.into(), ty }
    }

    /// The field's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field's declared type.
    pub fn ty(&self) -> &TypeName {
        &self.ty
    }
}

/// One component class of a specification.
#[derive(Clone, PartialEq, Debug)]
pub struct ClassSpec {
    name: TypeName,
    fields: Vec<FieldDecl>,
    methods: Vec<MethodSpec>,
}

impl ClassSpec {
    /// Constructor name used for class constructors in [`MethodSpec`].
    pub const CTOR: &'static str = "<init>";

    /// Creates a class.
    pub fn new(name: TypeName, fields: Vec<FieldDecl>, methods: Vec<MethodSpec>) -> Self {
        ClassSpec { name, fields, methods }
    }

    /// The class name.
    pub fn name(&self) -> &TypeName {
        &self.name
    }

    /// The declared fields.
    pub fn fields(&self) -> &[FieldDecl] {
        &self.fields
    }

    /// The declared methods (constructors appear under the name
    /// [`ClassSpec::CTOR`]).
    pub fn methods(&self) -> &[MethodSpec] {
        &self.methods
    }

    /// Looks up a method by name.
    pub fn method(&self, name: &str) -> Option<&MethodSpec> {
        self.methods.iter().find(|m| m.name() == name)
    }

    /// The class constructor, if declared.
    pub fn ctor(&self) -> Option<&MethodSpec> {
        self.method(Self::CTOR)
    }
}

/// The base of a [`SpecPath`]: the receiver or a parameter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpecVar {
    /// The method receiver `this`.
    This,
    /// The parameter with the given index.
    Param(usize),
}

/// An access path inside a method body: `this.set.ver`, `s.ver`, …
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecPath {
    base: SpecVar,
    fields: Vec<String>,
}

impl SpecPath {
    /// Creates a path. Fields may be given as `String`s or interned
    /// [`canvas_logic::Symbol`]s.
    pub fn new(base: SpecVar, fields: impl IntoIterator<Item = impl Into<String>>) -> Self {
        SpecPath { base, fields: fields.into_iter().map(Into::into).collect() }
    }

    /// The path's base.
    pub fn base(&self) -> SpecVar {
        self.base
    }

    /// The field selections.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Converts to a logic [`AccessPath`], naming the receiver `this`.
    pub fn to_access_path(&self, method: &MethodSpec, class: &ClassSpec) -> AccessPath {
        let base = match self.base {
            SpecVar::This => Var::new("this", *class.name()),
            SpecVar::Param(k) => {
                let (n, t) = &method.params()[k];
                Var::new(n.clone(), *t)
            }
        };
        let mut p = AccessPath::of(base);
        for f in &self.fields {
            p = p.field(f.clone());
        }
        p
    }
}

/// An expression in a method body.
#[derive(Clone, PartialEq, Debug)]
pub enum SpecExpr {
    /// A path read.
    Path(SpecPath),
    /// An allocation, possibly with constructor arguments (`new Iterator(this)`).
    New {
        /// The allocated class.
        ty: TypeName,
        /// Constructor arguments.
        args: Vec<SpecExpr>,
    },
}

/// A statement in a method body.
#[derive(Clone, PartialEq, Debug)]
pub enum SpecStmt {
    /// `lhs = rhs;` where `lhs` is a field path.
    Assign {
        /// Assigned location (a path ending in a field, or a bare `this`
        /// never occurs — checked at resolution).
        lhs: SpecPath,
        /// Assigned value.
        rhs: SpecExpr,
    },
}

/// One method (or constructor) of a component class.
#[derive(Clone, PartialEq, Debug)]
pub struct MethodSpec {
    name: String,
    params: Vec<(String, TypeName)>,
    ret_ty: Option<TypeName>,
    requires: Option<Formula>,
    body: Vec<SpecStmt>,
    ret: Option<SpecExpr>,
}

impl MethodSpec {
    /// Creates a method.
    pub fn new(
        name: impl Into<String>,
        params: Vec<(String, TypeName)>,
        ret_ty: Option<TypeName>,
        requires: Option<Formula>,
        body: Vec<SpecStmt>,
        ret: Option<SpecExpr>,
    ) -> Self {
        MethodSpec { name: name.into(), params, ret_ty, requires, body, ret }
    }

    /// The method name ([`ClassSpec::CTOR`] for constructors).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is a constructor.
    pub fn is_ctor(&self) -> bool {
        self.name == ClassSpec::CTOR
    }

    /// Parameters, in order.
    pub fn params(&self) -> &[(String, TypeName)] {
        &self.params
    }

    /// The declared return type, if any and if it is a component type.
    pub fn ret_ty(&self) -> Option<&TypeName> {
        self.ret_ty.as_ref()
    }

    /// The precondition, a formula over paths rooted at `this` and the
    /// parameters. `None` means `true`.
    pub fn requires(&self) -> Option<&Formula> {
        self.requires.as_ref()
    }

    /// The body statements (excluding `requires` and `return`).
    pub fn body(&self) -> &[SpecStmt] {
        &self.body
    }

    /// The returned expression, if the method returns a component value.
    pub fn ret(&self) -> Option<&SpecExpr> {
        self.ret.as_ref()
    }

    /// The logic variable standing for the receiver.
    pub fn this_var(&self, class: &ClassSpec) -> Var {
        Var::new("this", *class.name())
    }

    /// Logic variables standing for the parameters.
    pub fn param_vars(&self) -> Vec<Var> {
        self.params.iter().map(|(n, t)| Var::new(n.clone(), *t)).collect()
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec {} ({} classes)", self.name, self.classes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_lookup() {
        let spec = Spec::parse("cmp", crate::builtin::CMP_SOURCE).unwrap();
        assert!(spec.is_component_type(&TypeName::new("Set")));
        assert!(!spec.is_component_type(&TypeName::new("HashMap")));
        assert_eq!(spec.field_type(&TypeName::new("Iterator"), "set"), Some(TypeName::new("Set")));
        assert_eq!(spec.field_type(&TypeName::new("Iterator"), "bogus"), None);
        assert_eq!(spec.to_string(), "spec cmp (3 classes)");
    }

    #[test]
    fn client_facing_types_exclude_version() {
        let spec = Spec::parse("cmp", crate::builtin::CMP_SOURCE).unwrap();
        let cf: Vec<String> =
            spec.client_facing_types().iter().map(|t| t.as_str().to_string()).collect();
        assert_eq!(cf, ["Set", "Iterator"]);
    }

    #[test]
    fn spec_path_to_access_path() {
        let spec = Spec::parse("cmp", crate::builtin::CMP_SOURCE).unwrap();
        let it = spec.class("Iterator").unwrap();
        let ctor = it.ctor().unwrap();
        // ctor body: defVer = s.ver; set = s;
        let SpecStmt::Assign { lhs, rhs } = &ctor.body()[0];
        assert_eq!(lhs.to_access_path(ctor, it).to_string(), "this.defVer");
        match rhs {
            SpecExpr::Path(p) => {
                assert_eq!(p.to_access_path(ctor, it).to_string(), "s.ver");
            }
            other => panic!("unexpected rhs {other:?}"),
        }
    }
}
