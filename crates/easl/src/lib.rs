//! EASL — the *Executable Abstraction Specification Language* (paper §2).
//!
//! An EASL specification is an abstract Java-like program describing the
//! conformance-relevant behaviour of a software component: classes with
//! reference-typed fields, constructors and methods whose bodies are
//! restricted to field assignments, allocations and returns, plus
//! `requires` clauses stating preconditions that any well-behaved client
//! must satisfy.
//!
//! This crate provides:
//!
//! * the typed AST ([`Spec`], [`ClassSpec`], [`MethodSpec`], …),
//! * a lexer/parser for the concrete Java-like syntax of the paper's Fig. 2,
//! * the built-in specifications used throughout the paper
//!   ([`builtin::cmp`], [`builtin::grp`], [`builtin::imp`], [`builtin::aop`]),
//! * the *mutation-restriction* classifier of §6 ([`restrict`]).
//!
//! The paper's built-in set/map value types are not needed by any of its
//! example specifications and are not modelled.
//!
//! # Example
//!
//! ```
//! use canvas_easl::Spec;
//!
//! let spec = Spec::parse("cmp", canvas_easl::builtin::CMP_SOURCE)?;
//! assert_eq!(spec.class_names(), ["Version", "Set", "Iterator"]);
//! let it = spec.class("Iterator").unwrap();
//! assert!(it.method("next").unwrap().requires().is_some());
//! # Ok::<(), canvas_easl::EaslError>(())
//! ```

// the panic-free frontier: code reachable from external input must
// return typed errors, never panic (test code is exempt)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod ast;
pub mod builtin;
mod error;
pub mod lexer;
mod parser;
pub mod restrict;

pub use ast::{ClassSpec, FieldDecl, MethodSpec, Spec, SpecExpr, SpecPath, SpecStmt, SpecVar};
pub use error::EaslError;
pub use restrict::{classify, SpecClass};
