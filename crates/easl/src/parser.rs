//! Parser and resolver for the EASL concrete syntax.

use std::collections::HashMap;

use canvas_logic::{AccessPath, Formula, Term, TypeName, Var};

use crate::ast::{ClassSpec, FieldDecl, MethodSpec, Spec, SpecExpr, SpecPath, SpecStmt, SpecVar};
use crate::lexer::{lex, Cursor, Tok};
use crate::EaslError;

// ---------------------------------------------------------------------------
// Raw (unresolved) syntax
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct RawClass {
    name: String,
    line: u32,
    fields: Vec<(String, String, u32)>, // (type, name, line)
    methods: Vec<RawMethod>,
}

#[derive(Debug)]
struct RawMethod {
    name: String, // ClassSpec::CTOR for constructors
    ret_ty: Option<String>,
    params: Vec<(String, String)>, // (type, name)
    stmts: Vec<RawStmt>,
    #[allow(dead_code)] // kept for future diagnostics
    line: u32,
}

#[derive(Debug)]
enum RawStmt {
    Requires(RawCond, u32),
    Assign(Vec<String>, RawRhs, u32),
    Return(RawRhs, u32),
}

#[derive(Debug)]
enum RawRhs {
    Chain(Vec<String>),
    New(String, Vec<RawRhs>, u32),
}

#[derive(Debug)]
enum RawCond {
    Cmp(bool, Vec<String>, Vec<String>), // positive, lhs chain, rhs chain
    And(Box<RawCond>, Box<RawCond>),
    Or(Box<RawCond>, Box<RawCond>),
    Not(Box<RawCond>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

pub(crate) fn parse_spec(name: String, src: &str) -> Result<Spec, EaslError> {
    let mut cur = Cursor::new(lex(src)?);
    let mut raw = Vec::new();
    while !cur.at_end() {
        raw.push(parse_class(&mut cur)?);
    }
    if raw.is_empty() {
        return Err(EaslError::new(0, "empty specification"));
    }
    resolve(name, raw)
}

fn parse_class(cur: &mut Cursor) -> Result<RawClass, EaslError> {
    let line = cur.line();
    cur.expect_kw("class")?;
    let name = cur.expect_ident()?;
    cur.expect("{")?;
    let mut fields = Vec::new();
    let mut methods = Vec::new();
    while !cur.eat("}") {
        let mline = cur.line();
        let first = cur.expect_ident()?;
        if matches!(cur.peek(), Some(Tok::Punct("("))) {
            // constructor: ClassName ( params ) { ... }
            if first != name {
                return Err(EaslError::new(
                    mline,
                    format!("constructor name {first:?} does not match class {name:?}"),
                ));
            }
            let params = parse_params(cur)?;
            let stmts = parse_block(cur)?;
            methods.push(RawMethod {
                name: ClassSpec::CTOR.to_string(),
                ret_ty: None,
                params,
                stmts,
                line: mline,
            });
        } else {
            let second = cur.expect_ident()?;
            if matches!(cur.peek(), Some(Tok::Punct("("))) {
                // method: RetType name ( params ) { ... }
                let params = parse_params(cur)?;
                let stmts = parse_block(cur)?;
                methods.push(RawMethod {
                    name: second,
                    ret_ty: Some(first),
                    params,
                    stmts,
                    line: mline,
                });
            } else {
                // field: Type name ;
                cur.expect(";")?;
                fields.push((first, second, mline));
            }
        }
    }
    Ok(RawClass { name, line, fields, methods })
}

fn parse_params(cur: &mut Cursor) -> Result<Vec<(String, String)>, EaslError> {
    cur.expect("(")?;
    let mut out = Vec::new();
    if !cur.eat(")") {
        loop {
            let ty = cur.expect_ident()?;
            let name = cur.expect_ident()?;
            out.push((ty, name));
            if cur.eat(")") {
                break;
            }
            cur.expect(",")?;
        }
    }
    Ok(out)
}

fn parse_block(cur: &mut Cursor) -> Result<Vec<RawStmt>, EaslError> {
    cur.expect("{")?;
    let mut out = Vec::new();
    while !cur.eat("}") {
        out.push(parse_stmt(cur)?);
    }
    Ok(out)
}

fn parse_stmt(cur: &mut Cursor) -> Result<RawStmt, EaslError> {
    let line = cur.line();
    if cur.eat_kw("requires") {
        cur.expect("(")?;
        let cond = parse_or(cur)?;
        cur.expect(")")?;
        cur.expect(";")?;
        return Ok(RawStmt::Requires(cond, line));
    }
    if cur.eat_kw("return") {
        let rhs = parse_rhs(cur)?;
        cur.expect(";")?;
        return Ok(RawStmt::Return(rhs, line));
    }
    let chain = parse_chain(cur)?;
    cur.expect("=")?;
    let rhs = parse_rhs(cur)?;
    cur.expect(";")?;
    Ok(RawStmt::Assign(chain, rhs, line))
}

fn parse_rhs(cur: &mut Cursor) -> Result<RawRhs, EaslError> {
    let line = cur.line();
    if cur.eat_kw("new") {
        let ty = cur.expect_ident()?;
        cur.expect("(")?;
        let mut args = Vec::new();
        if !cur.eat(")") {
            loop {
                args.push(parse_rhs(cur)?);
                if cur.eat(")") {
                    break;
                }
                cur.expect(",")?;
            }
        }
        return Ok(RawRhs::New(ty, args, line));
    }
    Ok(RawRhs::Chain(parse_chain(cur)?))
}

fn parse_chain(cur: &mut Cursor) -> Result<Vec<String>, EaslError> {
    let mut out = vec![cur.expect_ident()?];
    while cur.eat(".") {
        out.push(cur.expect_ident()?);
    }
    Ok(out)
}

fn parse_or(cur: &mut Cursor) -> Result<RawCond, EaslError> {
    let mut lhs = parse_and(cur)?;
    while cur.eat("||") {
        let rhs = parse_and(cur)?;
        lhs = RawCond::Or(Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_and(cur: &mut Cursor) -> Result<RawCond, EaslError> {
    let mut lhs = parse_unary(cur)?;
    while cur.eat("&&") {
        let rhs = parse_unary(cur)?;
        lhs = RawCond::And(Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_unary(cur: &mut Cursor) -> Result<RawCond, EaslError> {
    if cur.eat("!") {
        return Ok(RawCond::Not(Box::new(parse_unary(cur)?)));
    }
    if cur.eat("(") {
        let inner = parse_or(cur)?;
        cur.expect(")")?;
        // allow a comparison of a parenthesised chain? not needed; treat as group
        return Ok(inner);
    }
    let line = cur.line();
    let lhs = parse_chain(cur)?;
    let positive = if cur.eat("==") {
        true
    } else if cur.eat("!=") {
        false
    } else {
        return Err(EaslError::new(line, "expected == or != in requires condition"));
    };
    let rhs = parse_chain(cur)?;
    Ok(RawCond::Cmp(positive, lhs, rhs))
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

struct Ctx<'a> {
    /// class name -> (field name -> field type)
    classes: &'a HashMap<String, HashMap<String, String>>,
    class_name: &'a str,
    params: &'a [(String, String)], // (type, name)
}

fn resolve(name: String, raw: Vec<RawClass>) -> Result<Spec, EaslError> {
    let mut class_fields: HashMap<String, HashMap<String, String>> = HashMap::new();
    for c in &raw {
        if class_fields.contains_key(&c.name) {
            return Err(EaslError::new(c.line, format!("duplicate class {:?}", c.name)));
        }
        let mut fm = HashMap::new();
        for (ty, fname, fline) in &c.fields {
            if fm.insert(fname.clone(), ty.clone()).is_some() {
                return Err(EaslError::new(*fline, format!("duplicate field {fname:?}")));
            }
            if !raw.iter().any(|d| &d.name == ty) {
                return Err(EaslError::new(
                    *fline,
                    format!("field {fname:?} has unknown component type {ty:?}"),
                ));
            }
        }
        class_fields.insert(c.name.clone(), fm);
    }

    let ctor_arity: HashMap<String, usize> = raw
        .iter()
        .map(|c| {
            let arity =
                c.methods.iter().find(|m| m.name == ClassSpec::CTOR).map_or(0, |m| m.params.len());
            (c.name.clone(), arity)
        })
        .collect();

    let mut classes = Vec::new();
    for c in &raw {
        let mut methods = Vec::new();
        for m in &c.methods {
            let ctx = Ctx { classes: &class_fields, class_name: &c.name, params: &m.params };
            methods.push(resolve_method(c, m, &ctx, &ctor_arity)?);
        }
        let fields = c
            .fields
            .iter()
            .map(|(ty, fname, _)| FieldDecl::new(fname.clone(), TypeName::new(ty.clone())))
            .collect();
        classes.push(ClassSpec::new(TypeName::new(c.name.clone()), fields, methods));
    }
    Ok(Spec::from_classes(name, classes))
}

fn resolve_method(
    class: &RawClass,
    m: &RawMethod,
    ctx: &Ctx<'_>,
    ctor_arity: &HashMap<String, usize>,
) -> Result<MethodSpec, EaslError> {
    let params: Vec<(String, TypeName)> =
        m.params.iter().map(|(ty, n)| (n.clone(), TypeName::new(ty.clone()))).collect();
    let ret_ty = m
        .ret_ty
        .as_ref()
        .filter(|t| ctx.classes.contains_key(*t))
        .map(|t| TypeName::new(t.clone()));

    let mut requires: Option<Formula> = None;
    let mut body = Vec::new();
    let mut ret: Option<SpecExpr> = None;
    for stmt in &m.stmts {
        match stmt {
            RawStmt::Requires(cond, line) => {
                if !body.is_empty() || ret.is_some() {
                    return Err(EaslError::new(
                        *line,
                        "requires clauses must appear at method entry",
                    ));
                }
                let f = resolve_cond(cond, ctx, *line)?;
                requires = Some(match requires.take() {
                    None => f,
                    Some(g) => Formula::and([g, f]),
                });
            }
            RawStmt::Assign(chain, rhs, line) => {
                if ret.is_some() {
                    return Err(EaslError::new(*line, "statement after return"));
                }
                let lhs = resolve_chain(chain, ctx, *line)?;
                if lhs.fields().is_empty() {
                    return Err(EaslError::new(
                        *line,
                        "cannot assign to a parameter or `this` in a specification",
                    ));
                }
                let rhs = resolve_rhs(rhs, ctx, ctor_arity, *line)?;
                body.push(SpecStmt::Assign { lhs, rhs });
            }
            RawStmt::Return(rhs, line) => {
                if ret.is_some() {
                    return Err(EaslError::new(*line, "multiple return statements"));
                }
                // Returns of non-component values (e.g. booleans) are dropped
                // at parse time by the grammar (only chains/news allowed);
                // type relevance is decided by the consumer via ret_ty().
                ret = Some(resolve_rhs(rhs, ctx, ctor_arity, *line)?);
            }
        }
    }
    let _ = class;
    Ok(MethodSpec::new(m.name.clone(), params, ret_ty, requires, body, ret))
}

fn resolve_chain(chain: &[String], ctx: &Ctx<'_>, line: u32) -> Result<SpecPath, EaslError> {
    let (base, mut ty, rest): (SpecVar, String, &[String]) = if chain[0] == "this" {
        (SpecVar::This, ctx.class_name.to_string(), &chain[1..])
    } else if let Some(k) = ctx.params.iter().position(|(_, n)| n == &chain[0]) {
        (SpecVar::Param(k), ctx.params[k].0.clone(), &chain[1..])
    } else if ctx.classes[ctx.class_name].contains_key(&chain[0]) {
        (SpecVar::This, ctx.class_name.to_string(), chain)
    } else {
        return Err(EaslError::new(
            line,
            format!("unknown identifier {:?} (not a parameter or field)", chain[0]),
        ));
    };
    let mut fields = Vec::new();
    for f in rest {
        let class = ctx.classes.get(&ty).ok_or_else(|| {
            EaslError::new(
                line,
                format!("cannot select field {f:?} from non-component type {ty:?}"),
            )
        })?;
        ty = class
            .get(f)
            .ok_or_else(|| EaslError::new(line, format!("type {ty:?} has no field {f:?}")))?
            .clone();
        fields.push(f.clone());
    }
    Ok(SpecPath::new(base, fields))
}

fn resolve_rhs(
    rhs: &RawRhs,
    ctx: &Ctx<'_>,
    ctor_arity: &HashMap<String, usize>,
    line: u32,
) -> Result<SpecExpr, EaslError> {
    match rhs {
        RawRhs::Chain(chain) => Ok(SpecExpr::Path(resolve_chain(chain, ctx, line)?)),
        RawRhs::New(ty, args, nline) => {
            let arity = *ctor_arity.get(ty).ok_or_else(|| {
                EaslError::new(*nline, format!("allocation of unknown class {ty:?}"))
            })?;
            if args.len() != arity {
                return Err(EaslError::new(
                    *nline,
                    format!(
                        "constructor of {ty:?} expects {arity} argument(s), got {}",
                        args.len()
                    ),
                ));
            }
            let args = args
                .iter()
                .map(|a| resolve_rhs(a, ctx, ctor_arity, *nline))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SpecExpr::New { ty: TypeName::new(ty.clone()), args })
        }
    }
}

fn resolve_cond(cond: &RawCond, ctx: &Ctx<'_>, line: u32) -> Result<Formula, EaslError> {
    Ok(match cond {
        RawCond::Cmp(positive, l, r) => {
            let lp = chain_term(l, ctx, line)?;
            let rp = chain_term(r, ctx, line)?;
            if *positive {
                Formula::Eq(lp, rp)
            } else {
                Formula::Ne(lp, rp)
            }
        }
        RawCond::And(a, b) => {
            Formula::and([resolve_cond(a, ctx, line)?, resolve_cond(b, ctx, line)?])
        }
        RawCond::Or(a, b) => {
            Formula::or([resolve_cond(a, ctx, line)?, resolve_cond(b, ctx, line)?])
        }
        RawCond::Not(a) => Formula::not(resolve_cond(a, ctx, line)?),
    })
}

fn chain_term(chain: &[String], ctx: &Ctx<'_>, line: u32) -> Result<Term, EaslError> {
    let sp = resolve_chain(chain, ctx, line)?;
    let base = match sp.base() {
        SpecVar::This => Var::new("this", TypeName::new(ctx.class_name)),
        SpecVar::Param(k) => {
            let (ty, n) = &ctx.params[k];
            Var::new(n.clone(), TypeName::new(ty.clone()))
        }
    };
    let mut p = AccessPath::of(base);
    for f in sp.fields() {
        p = p.field(f.clone());
    }
    Ok(Term::Path(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::CMP_SOURCE;

    #[test]
    fn parse_cmp() {
        let spec = Spec::parse("cmp", CMP_SOURCE).unwrap();
        let set = spec.class("Set").unwrap();
        assert_eq!(set.fields().len(), 1);
        assert!(set.ctor().is_some());
        let add = set.method("add").unwrap();
        assert!(add.requires().is_none());
        assert_eq!(add.body().len(), 1);
        let iterator = set.method("iterator").unwrap();
        assert_eq!(iterator.ret_ty().map(|t| t.as_str()), Some("Iterator"));
        assert!(matches!(iterator.ret(), Some(SpecExpr::New { .. })));

        let it = spec.class("Iterator").unwrap();
        let next = it.method("next").unwrap();
        let req = next.requires().unwrap();
        assert_eq!(req.to_string(), "this.defVer == this.set.ver");
        let remove = it.method("remove").unwrap();
        assert_eq!(remove.body().len(), 2);
    }

    #[test]
    fn unqualified_field_resolution() {
        // `ver = new Version();` resolves `ver` to `this.ver`
        let spec = Spec::parse("cmp", CMP_SOURCE).unwrap();
        let set = spec.class("Set").unwrap();
        let SpecStmt::Assign { lhs, .. } = &set.ctor().unwrap().body()[0];
        assert_eq!(lhs.base(), SpecVar::This);
        assert_eq!(lhs.fields(), ["ver"]);
    }

    #[test]
    fn param_shadows_nothing_and_resolves() {
        let spec = Spec::parse("cmp", CMP_SOURCE).unwrap();
        let it = spec.class("Iterator").unwrap();
        let ctor = it.ctor().unwrap();
        let SpecStmt::Assign { rhs, .. } = &ctor.body()[1]; // set = s;
        match rhs {
            SpecExpr::Path(p) => assert!(matches!(p.base(), SpecVar::Param(0))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors() {
        // unknown field
        let e = Spec::parse("t", "class A { A() { bogus = new A(); } }").unwrap_err();
        assert!(e.to_string().contains("unknown identifier"), "{e}");
        // requires not at entry
        let e = Spec::parse(
            "t",
            "class A { B f; A() { } void m() { f = new A(); requires (f == f); } } class B { }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("method entry"), "{e}");
        // ctor name mismatch
        let e = Spec::parse("t", "class A { B() { } }").unwrap_err();
        assert!(e.to_string().contains("does not match"), "{e}");
        // wrong ctor arity
        let e = Spec::parse(
            "t",
            "class A { A(A x) { } } class B { B() { } A m() { return new A(); } }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("expects 1 argument"), "{e}");
        // duplicate class
        let e = Spec::parse("t", "class A { } class A { }").unwrap_err();
        assert!(e.to_string().contains("duplicate class"), "{e}");
        // assignment to parameter
        let e = Spec::parse("t", "class A { void m(A x) { x = new A(); } }").unwrap_err();
        assert!(e.to_string().contains("cannot assign"), "{e}");
        // field of unknown type
        let e = Spec::parse("t", "class A { Foo f; }").unwrap_err();
        assert!(e.to_string().contains("unknown component type"), "{e}");
    }

    #[test]
    fn requires_conjunction_of_clauses() {
        let src = "class F { F() { } void use(W a, W b) { requires (a.fac == this); requires (b.fac == this); } } class W { F fac; W(F f) { fac = f; } }";
        let spec = Spec::parse("t", src).unwrap();
        let m = spec.class("F").unwrap().method("use").unwrap();
        let req = m.requires().unwrap().to_string();
        assert_eq!(req, "a.fac == this && b.fac == this");
    }
}
