//! The built-in FOS specifications used throughout the paper.
//!
//! * [`cmp`] — the Concurrent Modification Problem (paper Fig. 2): an
//!   iterator may be used only while its underlying collection is unmodified
//!   (except through that iterator).
//! * [`grp`] — the Grabbed Resource Problem (§2.2): starting a new traversal
//!   of a graph invalidates all prior traversals of the same graph.
//! * [`imp`] — the Implementation Mismatch Problem (§2.2): values combined
//!   by a factory-style module must belong to the same factory instance.
//! * [`aop`] — the Alien Object Problem (§2.2): objects passed to a compound
//!   object's methods must belong to that compound object.

use crate::Spec;

/// EASL source of the CMP specification (paper Fig. 2).
pub const CMP_SOURCE: &str = r#"
class Version { /* represents distinct versions of a Set */ }

class Set {
    Version ver;
    Set() { ver = new Version(); }
    boolean add(Object o) { ver = new Version(); }
    boolean remove(Object o) { ver = new Version(); }
    Iterator iterator() { return new Iterator(this); }
}

class Iterator {
    Set set;
    Version defVer;
    Iterator(Set s) { defVer = s.ver; set = s; }
    void remove() {
        requires (defVer == set.ver);
        set.ver = new Version();
        defVer = set.ver;
    }
    Object next() { requires (defVer == set.ver); }
}
"#;

/// EASL source of the GRP specification.
///
/// `Graph.startTraversal()` preemptively grabs the graph: it installs a new
/// ownership token, so previously created `Traversal` objects fail the
/// `requires` of `next()`.
pub const GRP_SOURCE: &str = r#"
class Token { /* ownership epoch of a graph */ }

class Graph {
    Token owner;
    Graph() { owner = new Token(); }
    Traversal startTraversal() {
        owner = new Token();
        return new Traversal(this);
    }
}

class Traversal {
    Graph g;
    Token tok;
    Traversal(Graph g0) { g = g0; tok = g0.owner; }
    Object next() { requires (tok == g.owner); }
}
"#;

/// EASL source of the IMP specification (Factory pattern conformance).
pub const IMP_SOURCE: &str = r#"
class Factory {
    Factory() { }
    Widget makeWidget() { return new Widget(this); }
    void combine(Widget a, Widget b) {
        requires (a.fac == this && b.fac == this);
    }
}

class Widget {
    Factory fac;
    Widget(Factory f) { fac = f; }
}
"#;

/// EASL source of the AOP specification (vertices belong to their graph).
pub const AOP_SOURCE: &str = r#"
class Graph {
    Graph() { }
    Vertex addVertex() { return new Vertex(this); }
    void addEdge(Vertex x, Vertex y) {
        requires (x.owner == this && y.owner == this);
    }
}

class Vertex {
    Graph owner;
    Vertex(Graph g) { owner = g; }
}
"#;

/// An intentionally *non*-mutation-restricted specification, used to test
/// derivation budgets: a mutable field of a non-token type forms an
/// unbounded chain, so the weakest-precondition iteration keeps producing
/// deeper and deeper predicates.
pub const UNBOUNDED_SOURCE: &str = r#"
class Cell {
    Cell prev;
    Cell() { }
    void push(Cell c) { prev = c; }
    void use(Cell c) { requires (prev == c.prev); }
}
"#;

/// Parses the CMP specification.
pub fn cmp() -> Spec {
    parse_builtin("cmp", CMP_SOURCE)
}

/// Parses the GRP specification.
pub fn grp() -> Spec {
    parse_builtin("grp", GRP_SOURCE)
}

/// Parses the IMP specification.
pub fn imp() -> Spec {
    parse_builtin("imp", IMP_SOURCE)
}

/// Parses the AOP specification.
pub fn aop() -> Spec {
    parse_builtin("aop", AOP_SOURCE)
}

/// Parses the adversarial unbounded specification.
pub fn unbounded() -> Spec {
    parse_builtin("unbounded", UNBOUNDED_SOURCE)
}

fn parse_builtin(name: &str, src: &str) -> Spec {
    // calls the parser directly: built-in sources are compile-time
    // constants, not external input, so the `truncate-input` fault
    // injection point in `Spec::parse` must not apply to them
    match crate::parser::parse_spec(name.to_string(), src) {
        Ok(s) => s,
        Err(e) => unreachable!("built-in spec {name} must parse: {e}"),
    }
}

/// All built-in well-behaved specs, by name.
pub fn all() -> Vec<Spec> {
    vec![cmp(), grp(), imp(), aop()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_parse() {
        for (spec, n) in [(cmp(), 3), (grp(), 3), (imp(), 2), (aop(), 2)] {
            assert_eq!(spec.classes().len(), n, "{}", spec.name());
        }
        assert_eq!(unbounded().classes().len(), 1);
        assert_eq!(all().len(), 4);
    }

    #[test]
    fn grp_shapes() {
        let spec = grp();
        let g = spec.class("Graph").unwrap();
        let start = g.method("startTraversal").unwrap();
        assert_eq!(start.body().len(), 1);
        assert!(start.ret().is_some());
        let t = spec.class("Traversal").unwrap();
        assert_eq!(
            t.method("next").unwrap().requires().unwrap().to_string(),
            "this.tok == this.g.owner"
        );
    }

    #[test]
    fn imp_requires_conjunction() {
        let spec = imp();
        let m = spec.class("Factory").unwrap().method("combine").unwrap();
        assert_eq!(m.requires().unwrap().to_string(), "a.fac == this && b.fac == this");
    }
}
