//! Error type for EASL parsing and resolution.

use std::fmt;

/// An error produced while lexing, parsing or resolving an EASL
/// specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EaslError {
    line: u32,
    message: String,
}

impl EaslError {
    /// Creates an error attached to a 1-based source line.
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        EaslError { line, message: message.into() }
    }

    /// The 1-based source line the error refers to (0 if unknown).
    pub fn line(&self) -> u32 {
        self.line
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for EaslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for EaslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = EaslError::new(3, "unexpected token");
        assert_eq!(e.to_string(), "line 3: unexpected token");
        let e = EaslError::new(0, "empty specification");
        assert_eq!(e.to_string(), "empty specification");
        assert_eq!(e.message(), "empty specification");
    }
}
