//! The specification classifier of paper §6.
//!
//! §6 proves that the abstraction-derivation procedure terminates with a
//! finite, precise abstraction for the class of *mutation-restricted*
//! specifications. The paper's formal definition is built from:
//!
//! * **alias-based**: all preconditions are boolean combinations of alias
//!   conditions (`α == β` over access paths) — true of every parseable EASL
//!   `requires` in this implementation, so not a separate check;
//! * **immutable field**: assigned only during construction of its owner;
//! * **mutation-free**: all fields immutable (GRP's `Traversal`, IMP, AOP);
//! * **mutation-restricted**: mutable fields are *version-like* — their type
//!   is a **token class** (no fields, no methods, e.g. CMP's `Version` or
//!   GRP's `Token`), and every post-construction assignment to them stores
//!   either a fresh token or a copy of another token-typed path. Token
//!   values are pure identity epochs: they have no structure the weakest
//!   precondition can descend into, which bounds the access-path depth of
//!   derived predicates and hence forces the derivation to converge.
//!
//! (The provided text of the paper truncates before §6's formal definition;
//! the characterisation above is reconstructed from the properties §6 needs:
//! CMP, GRP, IMP and AOP must all be members, and membership must bound the
//! predicate vocabulary of the WP iteration.)

use canvas_logic::TypeName;

use crate::ast::{ClassSpec, Spec, SpecExpr, SpecStmt};

/// The classification of a specification (ordered by increasing generality).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SpecClass {
    /// Every field is assigned only during construction of its owner.
    MutationFree,
    /// Mutable fields are version-like token fields (see module docs);
    /// derivation is guaranteed to terminate with a finite abstraction.
    MutationRestricted,
    /// No termination guarantee; the derivation runs under a budget.
    General,
}

impl SpecClass {
    /// Whether the derivation procedure is guaranteed to terminate for this
    /// class (paper §6).
    pub fn derivation_terminates(self) -> bool {
        self != SpecClass::General
    }
}

/// Whether `class_spec` is a *token class*: no fields and no methods other
/// than (possibly) a no-op constructor.
pub fn is_token_class(class_spec: &ClassSpec) -> bool {
    class_spec.fields().is_empty()
        && class_spec
            .methods()
            .iter()
            .all(|m| m.is_ctor() && m.body().is_empty() && m.requires().is_none())
}

/// Classifies a specification per §6.
pub fn classify(spec: &Spec) -> SpecClass {
    let mut any_mutation = false;
    for class in spec.classes() {
        for method in class.methods() {
            for stmt in method.body() {
                let SpecStmt::Assign { lhs, rhs } = stmt;
                // An assignment in a constructor to a field of `this`
                // (depth-1 path) is construction-time initialisation.
                let construction = method.is_ctor()
                    && lhs.fields().len() == 1
                    && lhs.base() == crate::SpecVar::This;
                if construction {
                    continue;
                }
                any_mutation = true;
                // Mutation: the assigned field's type must be a token class…
                let Some(field_ty) = assigned_field_type(spec, class, method, stmt) else {
                    return SpecClass::General;
                };
                let Some(target) = spec.class(field_ty.as_str()) else {
                    return SpecClass::General;
                };
                if !is_token_class(target) {
                    return SpecClass::General;
                }
                // …and the stored value must be a fresh token or a copy of a
                // token-typed path.
                match rhs {
                    SpecExpr::New { ty, args } => {
                        if !args.is_empty()
                            || spec.class(ty.as_str()).is_none_or(|c| !is_token_class(c))
                        {
                            return SpecClass::General;
                        }
                    }
                    SpecExpr::Path(_) => {
                        // type equality was established when resolving; the
                        // field type is a token class, so the path's value is
                        // a token.
                    }
                }
            }
        }
    }
    if any_mutation {
        SpecClass::MutationRestricted
    } else {
        SpecClass::MutationFree
    }
}

/// The declared type of the field assigned by `stmt`.
fn assigned_field_type(
    spec: &Spec,
    class: &ClassSpec,
    method: &crate::MethodSpec,
    stmt: &SpecStmt,
) -> Option<TypeName> {
    let SpecStmt::Assign { lhs, .. } = stmt;
    let path = lhs.to_access_path(method, class);
    // walk the type of the full path
    let mut ty = *path.base().ty();
    for f in path.fields() {
        ty = spec.field_type(&ty, f)?;
    }
    Some(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    #[test]
    fn cmp_is_mutation_restricted() {
        assert_eq!(classify(&builtin::cmp()), SpecClass::MutationRestricted);
        assert!(classify(&builtin::cmp()).derivation_terminates());
    }

    #[test]
    fn grp_is_mutation_restricted() {
        // startTraversal mutates Graph.owner (a token field) after construction
        assert_eq!(classify(&builtin::grp()), SpecClass::MutationRestricted);
    }

    #[test]
    fn imp_and_aop_are_mutation_free() {
        assert_eq!(classify(&builtin::imp()), SpecClass::MutationFree);
        assert_eq!(classify(&builtin::aop()), SpecClass::MutationFree);
    }

    #[test]
    fn unbounded_is_general() {
        let c = classify(&builtin::unbounded());
        assert_eq!(c, SpecClass::General);
        assert!(!c.derivation_terminates());
    }

    #[test]
    fn token_class_detection() {
        let spec = builtin::cmp();
        assert!(is_token_class(spec.class("Version").unwrap()));
        assert!(!is_token_class(spec.class("Set").unwrap()));
        let spec = builtin::grp();
        assert!(is_token_class(spec.class("Token").unwrap()));
    }

    #[test]
    fn ordering() {
        assert!(SpecClass::MutationFree < SpecClass::MutationRestricted);
        assert!(SpecClass::MutationRestricted < SpecClass::General);
    }
}
