//! A small lexer for the Java-like surface syntax shared by EASL
//! specifications and mini-Java client programs.

use crate::EaslError;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (content not interpreted by any analysis).
    Str(String),
    /// Integer literal (opaque to the analyses).
    Int(i64),
    /// A punctuation/operator token, e.g. `==`, `{`, `.`.
    Punct(&'static str),
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// A token paired with its 1-based source line and column.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (byte-based; the input is ASCII-only).
    pub col: u32,
}

const PUNCTS2: [&str; 7] = ["==", "!=", "&&", "||", "<=", ">=", "++"];
const PUNCTS1: [&str; 15] =
    ["{", "}", "(", ")", ";", ".", ",", "=", "!", "<", ">", "[", "]", "+", "-"];

/// 1-based column of byte `i` on the line starting at byte `line_start`.
fn col_at(i: usize, line_start: usize) -> u32 {
    (i - line_start + 1) as u32
}

/// Tokenizes `src`, skipping whitespace and `//`, `/* */` comments.
///
/// # Errors
///
/// Returns an error on unterminated comments/strings or unknown characters.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, EaslError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut line_start = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if !c.is_ascii() {
            // decode the full character for the error message; `i` sits on
            // a lead byte (everything before was ASCII), but fall back to
            // U+FFFD rather than trusting that with a panic
            let ch = src
                .get(i..)
                .and_then(|rest| rest.chars().next())
                .unwrap_or(char::REPLACEMENT_CHARACTER);
            return Err(EaslError::new(line, format!("unexpected character {ch:?}")));
        }
        if c == '\n' {
            line += 1;
            i += 1;
            line_start = i;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start_line = line;
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(EaslError::new(start_line, "unterminated block comment"));
                }
                if bytes[i] == b'\n' {
                    line += 1;
                    line_start = i + 1;
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        if c == '"' {
            let start_line = line;
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\n' {
                    return Err(EaslError::new(start_line, "unterminated string literal"));
                }
                j += 1;
            }
            if j >= bytes.len() {
                return Err(EaslError::new(start_line, "unterminated string literal"));
            }
            out.push(SpannedTok {
                tok: Tok::Str(src[i + 1..j].to_string()),
                line,
                col: col_at(i, line_start),
            });
            i = j + 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len()
                && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
            {
                j += 1;
            }
            out.push(SpannedTok {
                tok: Tok::Ident(src[i..j].to_string()),
                line,
                col: col_at(i, line_start),
            });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                j += 1;
            }
            let n: i64 = src[i..j]
                .parse()
                .map_err(|_| EaslError::new(line, "integer literal out of range"))?;
            out.push(SpannedTok { tok: Tok::Int(n), line, col: col_at(i, line_start) });
            i = j;
            continue;
        }
        if i + 1 < bytes.len() {
            // compare raw bytes: i+2 may not be a char boundary
            let two = &bytes[i..i + 2];
            if let Some(p) = PUNCTS2.iter().find(|p| p.as_bytes() == two) {
                out.push(SpannedTok { tok: Tok::Punct(p), line, col: col_at(i, line_start) });
                i += 2;
                continue;
            }
        }
        let one = &src[i..i + 1];
        if let Some(p) = PUNCTS1.iter().find(|p| **p == one) {
            out.push(SpannedTok { tok: Tok::Punct(p), line, col: col_at(i, line_start) });
            i += 1;
            continue;
        }
        return Err(EaslError::new(line, format!("unexpected character {c:?}")));
    }
    Ok(out)
}

/// A cursor over a token stream with the helpers recursive-descent parsers
/// need.
#[derive(Debug)]
pub struct Cursor {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Cursor {
    /// Creates a cursor at the start of the stream.
    pub fn new(toks: Vec<SpannedTok>) -> Self {
        Cursor { toks, pos: 0 }
    }

    /// The current line (or the last token's line at end of input).
    pub fn line(&self) -> u32 {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map_or(0, |t| t.line)
    }

    /// The current column (or the last token's column at end of input).
    pub fn col(&self) -> u32 {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map_or(0, |t| t.col)
    }

    /// Whether all tokens are consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// The current token without consuming it.
    pub fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    /// The token `k` positions ahead without consuming anything.
    pub fn peek_at(&self, k: usize) -> Option<&Tok> {
        self.toks.get(self.pos + k).map(|t| &t.tok)
    }

    /// Consumes and returns the next token.
    pub fn next_tok(&mut self) -> Result<Tok, EaslError> {
        let t = self
            .toks
            .get(self.pos)
            .ok_or_else(|| EaslError::new(self.line(), "unexpected end of input"))?;
        self.pos += 1;
        Ok(t.tok.clone())
    }

    /// Consumes a specific punctuation token.
    pub fn expect(&mut self, p: &'static str) -> Result<(), EaslError> {
        match self.peek() {
            Some(Tok::Punct(q)) if *q == p => {
                self.pos += 1;
                Ok(())
            }
            other => Err(EaslError::new(self.line(), format!("expected {p:?}, found {other:?}"))),
        }
    }

    /// Consumes an identifier and returns its text.
    pub fn expect_ident(&mut self) -> Result<String, EaslError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => {
                Err(EaslError::new(self.line(), format!("expected identifier, found {other:?}")))
            }
        }
    }

    /// Consumes a specific keyword (identifier with fixed text).
    pub fn expect_kw(&mut self, kw: &str) -> Result<(), EaslError> {
        let line = self.line();
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(EaslError::new(line, format!("expected keyword {kw:?}, found {id:?}")))
        }
    }

    /// If the next token is punctuation `p`, consumes it and returns true.
    pub fn eat(&mut self, p: &'static str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// If the next token is the keyword `kw`, consumes it and returns true.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_basics() {
        let toks = lex("class Set { Version ver; } // c\n/* multi\nline */ x == y").unwrap();
        let texts: Vec<String> = toks.iter().map(|t| format!("{:?}", t.tok)).collect();
        assert!(texts[0].contains("class"));
        let last = &toks[toks.len() - 2];
        assert_eq!(last.tok, Tok::Punct("=="));
        assert_eq!(last.line, 3);
    }

    #[test]
    fn lex_strings_and_ints() {
        let toks = lex("v.add(\"hello\"); x = 42;").unwrap();
        assert!(toks.iter().any(|t| t.tok == Tok::Str("hello".into())));
        assert!(toks.iter().any(|t| t.tok == Tok::Int(42)));
    }

    #[test]
    fn lex_errors() {
        assert!(lex("/* unterminated").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn lex_multibyte_is_an_error_not_a_panic() {
        // regression: slicing at non-char boundaries used to panic
        assert!(lex("é").is_err());
        assert!(lex("=é").is_err());
        assert!(lex("x = ☃;").is_err());
        assert!(lex("a\u{1F600}b").is_err());
    }

    #[test]
    fn lex_tracks_columns() {
        // columns are 1-based and reset per line; tabs count one column
        let toks = lex("ab == cd\n  x\n\ty").unwrap();
        let at = |i: usize| {
            let t = &toks[i];
            (format!("{:?}", t.tok), t.line, t.col)
        };
        assert_eq!(at(0).1, 1);
        assert_eq!(at(0).2, 1, "first token starts at column 1");
        assert_eq!((at(1).1, at(1).2), (1, 4), "`==` follows `ab ` on line 1");
        assert_eq!((at(2).1, at(2).2), (1, 7), "`cd` follows `ab == `");
        assert_eq!((at(3).1, at(3).2), (2, 3), "indentation advances the column");
        assert_eq!((at(4).1, at(4).2), (3, 2), "a tab advances one column");
    }

    #[test]
    fn cursor_ops() {
        let mut c = Cursor::new(lex("class Foo { }").unwrap());
        c.expect_kw("class").unwrap();
        assert_eq!(c.expect_ident().unwrap(), "Foo");
        assert!(c.eat("{"));
        assert!(!c.eat("{"));
        c.expect("}").unwrap();
        assert!(c.at_end());
        assert!(c.next_tok().is_err());
    }

    #[test]
    fn cursor_peek_at() {
        let c = Cursor::new(lex("a . b").unwrap());
        assert_eq!(c.peek_at(1), Some(&Tok::Punct(".")));
        assert_eq!(c.peek_at(2).and_then(|t| t.ident()), Some("b"));
        assert_eq!(c.peek_at(3), None);
    }
}
