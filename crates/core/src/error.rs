//! The unified, stage-tagged pipeline error.
//!
//! Every fallible step of the certification pipeline — loading and parsing
//! the EASL spec, deriving the abstraction, parsing and lowering the
//! mini-Java client, and running an engine — surfaces through [`CanvasError`]
//! at the binary frontier. The error carries the [`Stage`] that failed, an
//! [`ErrorKind`] classifying the failure, and (when the underlying error
//! points into source text) a 1-based line number, so drivers can render a
//! consistent `error[stage/kind]` diagnostic and scripts can grep for it.

use std::fmt;

use crate::certifier::CertifyError;
use canvas_easl::EaslError;

/// The pipeline stage an error was raised in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// Command-line argument handling.
    Cli,
    /// Reading or parsing the EASL specification.
    SpecLoad,
    /// Deriving the abstraction from the spec (§4.1/§4.2).
    Derivation,
    /// Parsing, lowering or inlining the mini-Java client.
    ClientFrontend,
    /// Running a certification engine over the client.
    Certification,
    /// Loading or persisting the incremental certificate cache.
    Cache,
}

impl Stage {
    /// The stable kebab-case name used in rendered diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Cli => "cli",
            Stage::SpecLoad => "spec-load",
            Stage::Derivation => "derivation",
            Stage::ClientFrontend => "client-frontend",
            Stage::Certification => "certification",
            Stage::Cache => "cache",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What went wrong, independent of where.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorKind {
    /// Bad command-line usage.
    Usage,
    /// The file could not be read.
    Io,
    /// The source text failed to lex, parse or resolve.
    Parse,
    /// Abstraction derivation failed.
    Derive,
    /// The client has no static `main` entry point.
    NoEntryPoint,
    /// The relational engine exceeded its hard state budget.
    StateBudget,
    /// An engine panicked and the panic was contained.
    EnginePanic,
}

impl ErrorKind {
    /// The stable kebab-case name used in rendered diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Usage => "usage",
            ErrorKind::Io => "io",
            ErrorKind::Parse => "parse",
            ErrorKind::Derive => "derive",
            ErrorKind::NoEntryPoint => "no-entry-point",
            ErrorKind::StateBudget => "state-budget",
            ErrorKind::EnginePanic => "engine-panic",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A pipeline error with enough structure for a driver to render a
/// consistent diagnostic: the failed [`Stage`], the [`ErrorKind`], an
/// optional 1-based source line, and a human-readable message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CanvasError {
    /// The pipeline stage that failed.
    pub stage: Stage,
    /// The failure classification.
    pub kind: ErrorKind,
    /// 1-based source line the error points at; `0` when not applicable.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl CanvasError {
    /// A new error with no source position.
    pub fn new(stage: Stage, kind: ErrorKind, message: impl Into<String>) -> CanvasError {
        CanvasError { stage, kind, line: 0, message: message.into() }
    }

    /// A bad-usage error from the CLI stage.
    pub fn usage(message: impl Into<String>) -> CanvasError {
        CanvasError::new(Stage::Cli, ErrorKind::Usage, message)
    }

    /// A file-read failure attributed to the given stage.
    pub fn io(stage: Stage, path: &str, err: &std::io::Error) -> CanvasError {
        CanvasError::new(stage, ErrorKind::Io, format!("cannot read {path}: {err}"))
    }

    /// A spec-side parse/resolve error. (`EaslError` doubles as the
    /// mini-Java `SourceError`, so attribution to a stage is explicit
    /// rather than via `From`.)
    pub fn spec(err: &EaslError) -> CanvasError {
        CanvasError {
            stage: Stage::SpecLoad,
            kind: ErrorKind::Parse,
            line: err.line(),
            message: err.message().to_string(),
        }
    }

    /// A client-side parse/lower error.
    pub fn client(err: &EaslError) -> CanvasError {
        CanvasError {
            stage: Stage::ClientFrontend,
            kind: ErrorKind::Parse,
            line: err.line(),
            message: err.message().to_string(),
        }
    }
}

impl From<CertifyError> for CanvasError {
    fn from(e: CertifyError) -> CanvasError {
        match &e {
            CertifyError::Derive(d) => {
                CanvasError::new(Stage::Derivation, ErrorKind::Derive, d.to_string())
            }
            CertifyError::Source(s) => CanvasError::client(s),
            CertifyError::NoMain => {
                CanvasError::new(Stage::ClientFrontend, ErrorKind::NoEntryPoint, e.to_string())
            }
            CertifyError::StateBudget { .. } => {
                CanvasError::new(Stage::Certification, ErrorKind::StateBudget, e.to_string())
            }
            CertifyError::Panicked { .. } => {
                CanvasError::new(Stage::Certification, ErrorKind::EnginePanic, e.to_string())
            }
        }
    }
}

impl fmt::Display for CanvasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}/{}]", self.stage, self.kind)?;
        if self.line > 0 {
            write!(f, " line {}", self.line)?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for CanvasError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_stage_kind_and_line() {
        let e = CanvasError::client(&EaslError::new(4, "unexpected token"));
        assert_eq!(e.to_string(), "error[client-frontend/parse] line 4: unexpected token");
        let e = CanvasError::usage("unknown flag --frob");
        assert_eq!(e.to_string(), "error[cli/usage]: unknown flag --frob");
    }

    #[test]
    fn certify_errors_map_to_stages() {
        let e: CanvasError = CertifyError::NoMain.into();
        assert_eq!((e.stage, e.kind), (Stage::ClientFrontend, ErrorKind::NoEntryPoint));
        let e: CanvasError =
            CertifyError::Panicked { engine: crate::Engine::ScmpFds, message: "boom".into() }
                .into();
        assert_eq!((e.stage, e.kind), (Stage::Certification, ErrorKind::EnginePanic));
        assert!(e.to_string().contains("boom"), "{e}");
    }

    #[test]
    fn spec_and_client_attribution_differ() {
        let raw = EaslError::new(2, "bad spec");
        assert_eq!(CanvasError::spec(&raw).stage, Stage::SpecLoad);
        assert_eq!(CanvasError::client(&raw).stage, Stage::ClientFrontend);
    }
}
