//! The engine abstraction: every certification engine implements
//! [`AnalysisEngine`], and the static [`registry`] is the single source of
//! truth for the engine list — the CLI's `canvas engines`, the evaluation
//! tables, and the benches all iterate it, so adding an engine means adding
//! one impl and one registry entry.
//!
//! Engines that analyse the same method share the expensive front-end
//! transforms (boolean program, specialized TVP, generic TVP) through
//! [`SharedTransforms`]: the first engine that needs a transform computes it,
//! later engines reuse it. The caches are [`OnceLock`]s so a prepared method
//! can be handed to several worker threads at once.

use std::sync::OnceLock;

use canvas_abstraction::{transform_method, BoolProgram, CellSolution, EntryAssumption};
use canvas_easl::Spec;
use canvas_faults::{Budget, Meter};
use canvas_minijava::{MethodIr, Program};
use canvas_tvla::TvpProgram;
use canvas_wp::Derived;

use crate::certifier::{CertifyError, Engine};
use crate::report::{Report, Stats, Violation, Witness, WitnessStep};

// Which engine wins the `OnceLock` init race depends on worker scheduling,
// so these are recorded but never baseline-gated.
static PREPARED_CACHE_HITS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::non_deterministic("core.prepared_cache_hits");
static PREPARED_CACHE_MISSES: canvas_telemetry::Counter =
    canvas_telemetry::Counter::non_deterministic("core.prepared_cache_misses");

/// Lazily computed front-end transforms for one `(method, entry)` pair,
/// shared by every engine that analyses that method.
#[derive(Default, Debug)]
pub struct SharedTransforms {
    boolprog: OnceLock<BoolProgram>,
    tvp_specialized: OnceLock<TvpProgram>,
    tvp_generic: OnceLock<TvpProgram>,
}

impl SharedTransforms {
    /// An empty cache; transforms are computed on first use.
    pub fn new() -> SharedTransforms {
        SharedTransforms::default()
    }

    /// The boolean program, if an engine already computed it. The
    /// incremental layer uses this to capture the program's delta-diff
    /// shape (see [`canvas_dataflow::delta`]) next to the solution it
    /// caches, without forcing a transform of its own.
    pub fn cached_boolprog(&self) -> Option<&BoolProgram> {
        self.boolprog.get()
    }
}

/// Per-program transform cache: one [`SharedTransforms`] per
/// `(method, entry-assumption)` cell, so a suite driver can run all engines
/// over one parsed program without recomputing any transform. All interior
/// state is [`OnceLock`]-based, so a `&PreparedProgram` can be shared across
/// threads.
#[derive(Debug)]
pub struct PreparedProgram {
    // indexed by MethodId.0, then entry (Clean = 0, Unknown = 1)
    cells: Vec<[SharedTransforms; 2]>,
}

impl PreparedProgram {
    /// Empty caches for every method of `program`.
    pub fn new(program: &Program) -> PreparedProgram {
        PreparedProgram { cells: program.methods().iter().map(|_| Default::default()).collect() }
    }

    /// The transform cache for `(method, entry)`.
    pub fn shared(&self, method: &MethodIr, entry: EntryAssumption) -> &SharedTransforms {
        let slot = match entry {
            EntryAssumption::Clean => 0,
            EntryAssumption::Unknown => 1,
        };
        &self.cells[method.id.0][slot]
    }
}

/// Everything an engine needs to analyse one method: the client, the spec
/// and its derived abstraction, the entry assumption, the state budgets, and
/// the shared transform cache.
pub struct MethodContext<'a> {
    /// The parsed client.
    pub program: &'a Program,
    /// The method under analysis.
    pub method: &'a MethodIr,
    /// The component specification.
    pub spec: &'a Spec,
    /// The derived abstraction for the spec.
    pub derived: &'a Derived,
    /// Entry-state assumption (clean `main` vs out-of-context method).
    pub entry: EntryAssumption,
    /// State budget for the relational boolean engine.
    pub relational_budget: usize,
    /// Structure budget for the TVLA engines.
    pub tvla_budget: usize,
    /// Shared resource governor budget (steps, deadline, states). Unlimited
    /// by default; exhaustion degrades the report to an inconclusive
    /// verdict.
    pub budget: Budget,
    /// Whether to record provenance and attach witness traces to the
    /// violations (slower solve paths; off for plain certification).
    pub explain: bool,
    /// Shared transform cache for this `(method, entry)` pair.
    pub shared: &'a SharedTransforms,
    /// A cached FDS solution of an earlier version of this method, for
    /// within-method delta re-solve ([`canvas_dataflow::delta`]). Only the
    /// FDS engine consumes it; `None` means cold solve.
    pub fds_seed: Option<&'a canvas_dataflow::DeltaSeed>,
}

impl MethodContext<'_> {
    /// The boolean program for this method (computed once, shared by the
    /// FDS and relational SCMP engines).
    pub fn boolprog(&self) -> &BoolProgram {
        if self.shared.boolprog.get().is_some() {
            PREPARED_CACHE_HITS.incr();
        }
        self.shared.boolprog.get_or_init(|| {
            PREPARED_CACHE_MISSES.incr();
            transform_method(self.program, self.method, self.spec, self.derived, self.entry)
        })
    }

    /// The specialized TVP translation (shared by both TVLA modes).
    pub fn tvp_specialized(&self) -> &TvpProgram {
        if self.shared.tvp_specialized.get().is_some() {
            PREPARED_CACHE_HITS.incr();
        }
        self.shared.tvp_specialized.get_or_init(|| {
            PREPARED_CACHE_MISSES.incr();
            canvas_tvla::translate_specialized(self.program, self.method, self.spec, self.derived)
        })
    }

    /// The generic shape-graph TVP translation (shared by both SSG modes).
    pub fn tvp_generic(&self) -> &TvpProgram {
        if self.shared.tvp_generic.get().is_some() {
            PREPARED_CACHE_HITS.incr();
        }
        self.shared.tvp_generic.get_or_init(|| {
            PREPARED_CACHE_MISSES.incr();
            canvas_tvla::translate_generic(self.program, self.method, self.spec)
        })
    }

    fn violation(&self, site: &canvas_minijava::Site) -> Violation {
        Violation {
            method: self.program.method(site.method).qualified_name(),
            line: site.span.line,
            col: site.span.col,
            what: site.what.clone(),
            witness: None,
        }
    }

    /// A violation carrying a conservative "no witness" marker (the TVLA and
    /// alloc-site engines do not record provenance).
    fn violation_unavailable(
        &self,
        site: &canvas_minijava::Site,
        reason: &'static str,
    ) -> Violation {
        Violation { witness: Some(Witness::Unavailable(reason)), ..self.violation(site) }
    }

    /// A violation with its solver witness resolved to source terms. The
    /// boolean program's edges are index-aligned with the method's IR edges,
    /// so each trace step maps back to one source instruction.
    fn violation_witnessed(&self, v: &canvas_dataflow::Violation) -> Violation {
        let witness = v
            .witness
            .as_ref()
            .map(|steps| Witness::Trace(steps.iter().map(|s| self.witness_step(s)).collect()));
        Violation { witness, ..self.violation(&v.site) }
    }

    fn witness_step(&self, step: &canvas_dataflow::TraceStep) -> WitnessStep {
        use canvas_minijava::Instr;
        let m = self.program.method(step.method);
        let e = &m.cfg.edges()[step.edge];
        let name = |v: canvas_minijava::VarId| self.program.var(v).name.clone();
        let (line, col, what) = match &e.instr {
            Instr::New { at, .. }
            | Instr::CallComponent { at, .. }
            | Instr::CallClient { at, .. } => (at.span.line, at.span.col, at.what.clone()),
            Instr::Copy { dst, src } => (0, 0, format!("{} = {}", name(*dst), name(*src))),
            Instr::Load { dst, base, field } => {
                (0, 0, format!("{} = {}.{}", name(*dst), name(*base), field))
            }
            Instr::Store { base, field, src } => {
                (0, 0, format!("{}.{} = {}", name(*base), field, name(*src)))
            }
            Instr::Nullify { dst } => (0, 0, format!("{} = null", name(*dst))),
            Instr::Nop => (0, 0, "(no-op)".to_string()),
        };
        WitnessStep { line, col, what, fact: step.fact.clone() }
    }
}

/// One certification engine: an id for tables and reports, display strings,
/// and the analysis itself.
pub trait AnalysisEngine: Sync {
    /// The engine's id (the [`Engine`] enum variant).
    fn id(&self) -> Engine;
    /// Full name, e.g. `scmp-fds` (used by the CLI and reports).
    fn name(&self) -> &'static str;
    /// Short column label for the wide evaluation tables, e.g. `fds`.
    fn abbrev(&self) -> &'static str;
    /// Whether the engine uses the derived specialized abstraction.
    fn specialized(&self) -> bool {
        true
    }
    /// Analyses one method and reports the potential violations.
    ///
    /// When the shared resource governor (`cx.budget`) trips, engines return
    /// `Ok` with an inconclusive report rather than an error: degraded, not
    /// broken.
    ///
    /// # Errors
    ///
    /// [`CertifyError::StateBudget`] when a relational engine exceeds its
    /// own state budget; engines must not fail otherwise.
    fn run(&self, cx: &MethodContext<'_>) -> Result<Report, CertifyError>;

    /// Like [`AnalysisEngine::run`], but additionally returns the fixpoint
    /// solution as a certificate payload when the engine can express one.
    ///
    /// The default keeps the report and returns no solution; the boolean
    /// SCMP engines (FDS, relational) override it. `None` also covers
    /// inconclusive runs — a budget-tripped fixpoint is not a post-fixpoint
    /// and must not be shipped as one.
    ///
    /// # Errors
    ///
    /// Same contract as [`AnalysisEngine::run`].
    fn run_certified(
        &self,
        cx: &MethodContext<'_>,
    ) -> Result<(Report, Option<CellSolution>), CertifyError> {
        Ok((self.run(cx)?, None))
    }

    /// When [`AnalysisEngine::run_certified`] never produces a solution,
    /// the human-readable reason (recorded in the certificate as an
    /// `unavailable` cell, which the checker rejects as uncheckable).
    fn certificate_unsupported(&self) -> Option<&'static str> {
        Some("engine does not emit a replayable fixpoint solution")
    }
}

/// The set bits of a boolean-program state, as the certificate's sorted
/// index list.
fn solution_bits(bs: &canvas_dataflow::BitSet, width: usize) -> Vec<u32> {
    (0..width).filter(|&k| bs.get(k)).map(|k| k as u32).collect()
}

/// All engines, in evaluation-table order.
pub fn registry() -> &'static [&'static dyn AnalysisEngine] {
    REGISTRY
}

static REGISTRY: &[&dyn AnalysisEngine] = &[
    &ScmpFdsEngine,
    &ScmpRelationalEngine,
    &ScmpInterprocEngine,
    &TvlaRelationalEngine,
    &TvlaIndependentEngine,
    &GenericSsgRelationalEngine,
    &GenericSsgIndependentEngine,
    &GenericAllocSiteEngine,
];

/// Specialized nullary abstraction + polynomial may-be-1 dataflow (§4.3).
struct ScmpFdsEngine;

impl AnalysisEngine for ScmpFdsEngine {
    fn id(&self) -> Engine {
        Engine::ScmpFds
    }

    fn name(&self) -> &'static str {
        "scmp-fds"
    }

    fn abbrev(&self) -> &'static str {
        "fds"
    }

    fn run(&self, cx: &MethodContext<'_>) -> Result<Report, CertifyError> {
        Ok(self.run_certified(cx)?.0)
    }

    fn run_certified(
        &self,
        cx: &MethodContext<'_>,
    ) -> Result<(Report, Option<CellSolution>), CertifyError> {
        let bp = cx.boolprog();
        let gov = Meter::new(cx.budget);
        let inconclusive = |ex: canvas_faults::Exhaustion| {
            Report::inconclusive(
                self.id(),
                ex.reason(),
                Stats { predicates: bp.preds.len(), exhausted: true, ..Stats::default() },
            )
        };
        let (res, violations) = if cx.explain {
            // a carried seed has no provenance, so explained runs always
            // solve cold (witness traces must match the uncached path)
            if cx.fds_seed.is_some() {
                canvas_dataflow::delta::note_fallback();
            }
            let (res, prov) = match canvas_dataflow::fds::analyze_traced_with(bp, &gov) {
                Ok(pair) => pair,
                Err(ex) => return Ok((inconclusive(ex), None)),
            };
            let violations =
                canvas_dataflow::fds::violations_explained(bp, &res, &prov, cx.program, cx.derived);
            (res, violations)
        } else {
            // within-method delta re-solve: seed from the cached solution
            // when one is available and nothing can perturb the outcome (a
            // constrained governor could trip at a different point than a
            // cold solve, changing the exhaustion verdict)
            let seeded = match cx.fds_seed {
                Some(seed) if cx.budget.is_unlimited() => {
                    match canvas_dataflow::delta::analyze_delta(bp, seed, &gov) {
                        Ok(res) => res,
                        Err(ex) => return Ok((inconclusive(ex), None)),
                    }
                }
                Some(_) => {
                    canvas_dataflow::delta::note_fallback();
                    None
                }
                None => None,
            };
            let res = match seeded {
                Some(res) => res,
                None => match canvas_dataflow::fds::analyze_with(bp, &gov) {
                    Ok(res) => res,
                    Err(ex) => return Ok((inconclusive(ex), None)),
                },
            };
            let violations = canvas_dataflow::fds::violations(bp, &res);
            (res, violations)
        };
        let solution =
            CellSolution::MayOne { nodes: (0..bp.node_count).map(|r| res.row_ones(r)).collect() };
        let report = Report {
            engine: self.id(),
            violations: violations.iter().map(|v| cx.violation_witnessed(v)).collect(),
            stats: Stats {
                predicates: bp.preds.len(),
                work: res.edge_visits,
                max_states: 1,
                ..Stats::default()
            },
            verdict: Default::default(),
        };
        Ok((report, Some(solution)))
    }

    fn certificate_unsupported(&self) -> Option<&'static str> {
        None
    }
}

/// Specialized nullary abstraction + exponential relational dataflow.
struct ScmpRelationalEngine;

impl AnalysisEngine for ScmpRelationalEngine {
    fn id(&self) -> Engine {
        Engine::ScmpRelational
    }

    fn name(&self) -> &'static str {
        "scmp-relational"
    }

    fn abbrev(&self) -> &'static str {
        "rel"
    }

    fn run(&self, cx: &MethodContext<'_>) -> Result<Report, CertifyError> {
        Ok(self.run_certified(cx)?.0)
    }

    fn run_certified(
        &self,
        cx: &MethodContext<'_>,
    ) -> Result<(Report, Option<CellSolution>), CertifyError> {
        use canvas_dataflow::relational::RelStop;
        let bp = cx.boolprog();
        let gov = Meter::new(cx.budget);
        // The engine's own per-node valuation budget stays a hard error; only
        // the shared governor degrades to an inconclusive verdict.
        enum Stop {
            Hard(CertifyError),
            Soft(Report),
        }
        let stop = |s: RelStop, engine: Engine, preds: usize| match s {
            RelStop::States(_) => Stop::Hard(CertifyError::StateBudget { engine }),
            RelStop::Budget(ex) => Stop::Soft(Report::inconclusive(
                engine,
                ex.reason(),
                Stats { predicates: preds, exhausted: true, ..Stats::default() },
            )),
        };
        let (res, violations) = if cx.explain {
            let (res, prov) = match canvas_dataflow::relational::analyze_traced_with(
                bp,
                cx.relational_budget,
                &gov,
            ) {
                Ok(pair) => pair,
                Err(e) => match stop(e, self.id(), bp.preds.len()) {
                    Stop::Hard(err) => return Err(err),
                    Stop::Soft(report) => return Ok((report, None)),
                },
            };
            let violations = canvas_dataflow::relational::violations_explained(
                bp, &res, &prov, cx.program, cx.derived,
            );
            (res, violations)
        } else {
            let res =
                match canvas_dataflow::relational::analyze_with(bp, cx.relational_budget, &gov) {
                    Ok(res) => res,
                    Err(e) => match stop(e, self.id(), bp.preds.len()) {
                        Stop::Hard(err) => return Err(err),
                        Stop::Soft(report) => return Ok((report, None)),
                    },
                };
            let violations = canvas_dataflow::relational::violations(bp, &res);
            (res, violations)
        };
        let max_states = res.states.iter().map(|s| s.len()).max().unwrap_or(0);
        let solution = CellSolution::Relational {
            nodes: res
                .states
                .iter()
                .map(|set| {
                    let mut vals: Vec<Vec<u32>> =
                        set.iter().map(|bs| solution_bits(bs, bp.preds.len())).collect();
                    vals.sort();
                    vals
                })
                .collect(),
        };
        let report = Report {
            engine: self.id(),
            violations: violations.iter().map(|v| cx.violation_witnessed(v)).collect(),
            stats: Stats {
                predicates: bp.preds.len(),
                work: res.transfers,
                max_states,
                ..Stats::default()
            },
            verdict: Default::default(),
        };
        Ok((report, Some(solution)))
    }

    fn certificate_unsupported(&self) -> Option<&'static str> {
        None
    }
}

/// Context-sensitive interprocedural SCMP certification (§8).
struct ScmpInterprocEngine;

impl AnalysisEngine for ScmpInterprocEngine {
    fn id(&self) -> Engine {
        Engine::ScmpInterproc
    }

    fn name(&self) -> &'static str {
        "scmp-interproc"
    }

    fn abbrev(&self) -> &'static str {
        "inter"
    }

    fn run(&self, cx: &MethodContext<'_>) -> Result<Report, CertifyError> {
        let gov = Meter::new(cx.budget);
        let res = if cx.explain {
            canvas_dataflow::interproc::analyze_explained_with(
                cx.program, cx.spec, cx.derived, &gov,
            )
        } else {
            canvas_dataflow::interproc::analyze_with(cx.program, cx.spec, cx.derived, &gov)
        };
        let res = match res {
            Ok(res) => res,
            Err(ex) => {
                return Ok(Report::inconclusive(
                    self.id(),
                    ex.reason(),
                    Stats { exhausted: true, ..Stats::default() },
                ))
            }
        };
        Ok(Report {
            engine: self.id(),
            violations: res.violations.iter().map(|v| cx.violation_witnessed(v)).collect(),
            stats: Stats {
                predicates: res.max_instances,
                work: res.summary_iterations,
                max_states: 1,
                ..Stats::default()
            },
            verdict: Default::default(),
        })
    }
}

/// First-order predicate abstraction + TVLA engine, set of structures per
/// point (§5, relational mode).
struct TvlaRelationalEngine;

impl AnalysisEngine for TvlaRelationalEngine {
    fn id(&self) -> Engine {
        Engine::TvlaRelational
    }

    fn name(&self) -> &'static str {
        "tvla-relational"
    }

    fn abbrev(&self) -> &'static str {
        "tvla-r"
    }

    fn run(&self, cx: &MethodContext<'_>) -> Result<Report, CertifyError> {
        Ok(run_tvla(cx, self.id(), cx.tvp_specialized(), canvas_tvla::EngineMode::Relational))
    }
}

/// First-order predicate abstraction + TVLA engine, one structure per point
/// (§5, independent-attribute mode).
struct TvlaIndependentEngine;

impl AnalysisEngine for TvlaIndependentEngine {
    fn id(&self) -> Engine {
        Engine::TvlaIndependent
    }

    fn name(&self) -> &'static str {
        "tvla-independent"
    }

    fn abbrev(&self) -> &'static str {
        "tvla-i"
    }

    fn run(&self, cx: &MethodContext<'_>) -> Result<Report, CertifyError> {
        Ok(run_tvla(
            cx,
            self.id(),
            cx.tvp_specialized(),
            canvas_tvla::EngineMode::IndependentAttribute,
        ))
    }
}

/// Generic composite-program translation + shape-graph analysis (§3/§4.4
/// baseline), relational mode.
struct GenericSsgRelationalEngine;

impl AnalysisEngine for GenericSsgRelationalEngine {
    fn id(&self) -> Engine {
        Engine::GenericSsgRelational
    }

    fn name(&self) -> &'static str {
        "generic-ssg-relational"
    }

    fn abbrev(&self) -> &'static str {
        "ssg-r"
    }

    fn specialized(&self) -> bool {
        false
    }

    fn run(&self, cx: &MethodContext<'_>) -> Result<Report, CertifyError> {
        Ok(run_tvla(cx, self.id(), cx.tvp_generic(), canvas_tvla::EngineMode::Relational))
    }
}

/// The shape-graph baseline in independent-attribute mode.
struct GenericSsgIndependentEngine;

impl AnalysisEngine for GenericSsgIndependentEngine {
    fn id(&self) -> Engine {
        Engine::GenericSsgIndependent
    }

    fn name(&self) -> &'static str {
        "generic-ssg-independent"
    }

    fn abbrev(&self) -> &'static str {
        "ssg-i"
    }

    fn specialized(&self) -> bool {
        false
    }

    fn run(&self, cx: &MethodContext<'_>) -> Result<Report, CertifyError> {
        Ok(run_tvla(cx, self.id(), cx.tvp_generic(), canvas_tvla::EngineMode::IndependentAttribute))
    }
}

/// Generic allocation-site must-alias baseline (§3).
struct GenericAllocSiteEngine;

impl AnalysisEngine for GenericAllocSiteEngine {
    fn id(&self) -> Engine {
        Engine::GenericAllocSite
    }

    fn name(&self) -> &'static str {
        "generic-allocsite"
    }

    fn abbrev(&self) -> &'static str {
        "alloc"
    }

    fn specialized(&self) -> bool {
        false
    }

    fn run(&self, cx: &MethodContext<'_>) -> Result<Report, CertifyError> {
        canvas_faults::solver_abort();
        // The alloc-site baseline is a single linear pass, so account its
        // whole cost up front: one step per CFG edge (plus one so an empty
        // method still checks the deadline / injected trip).
        let gov = Meter::new(cx.budget);
        for _ in 0..=cx.method.cfg.edges().len() {
            if let Err(ex) = gov.tick() {
                return Ok(Report::inconclusive(
                    self.id(),
                    ex.reason(),
                    Stats { exhausted: true, ..Stats::default() },
                ));
            }
        }
        let res = canvas_heap::allocsite_analyze_with_entry(
            cx.program,
            cx.method,
            cx.spec,
            cx.entry == EntryAssumption::Unknown,
        );
        let violation = |s: &canvas_minijava::Site| {
            if cx.explain {
                cx.violation_unavailable(
                    s,
                    "the allocation-site baseline does not record provenance",
                )
            } else {
                cx.violation(s)
            }
        };
        Ok(Report {
            engine: self.id(),
            violations: res.violations.iter().map(violation).collect(),
            stats: Stats { work: res.edge_visits, max_states: 1, ..Stats::default() },
            verdict: Default::default(),
        })
    }
}

fn run_tvla(
    cx: &MethodContext<'_>,
    engine: Engine,
    tvp: &TvpProgram,
    mode: canvas_tvla::EngineMode,
) -> Report {
    let entry_structs = match cx.entry {
        EntryAssumption::Clean => vec![canvas_tvla::Structure::empty(&tvp.preds)],
        EntryAssumption::Unknown => {
            // one summary individual with every predicate value 1/2
            // conservatively stands for the unknown entry heap
            let mut s = canvas_tvla::Structure::empty(&tvp.preds);
            let u = s.add_individual();
            s.set_summary(u, true);
            for k in 0..tvp.preds.len() {
                match tvp.preds[k].arity {
                    0 => s.set(k, &[], canvas_logic::Kleene::Unknown),
                    1 => s.set(k, &[u], canvas_logic::Kleene::Unknown),
                    2 => s.set(k, &[u, u], canvas_logic::Kleene::Unknown),
                    _ => {}
                }
            }
            vec![s]
        }
    };
    let gov = Meter::new(cx.budget);
    let res = match canvas_tvla::run_from_with(tvp, mode, cx.tvla_budget, entry_structs, &gov) {
        Ok(res) => res,
        Err(ex) => {
            return Report::inconclusive(
                engine,
                ex.reason(),
                Stats { predicates: tvp.preds.len(), exhausted: true, ..Stats::default() },
            )
        }
    };
    let violation = |v: &canvas_tvla::TvlaViolation| {
        if cx.explain {
            cx.violation_unavailable(&v.site, "the TVLA engines do not record provenance")
        } else {
            cx.violation(&v.site)
        }
    };
    Report {
        engine,
        violations: res.violations.iter().map(violation).collect(),
        stats: Stats {
            predicates: tvp.preds.len(),
            work: res.applications,
            max_states: res.max_states,
            exhausted: res.exhausted,
            ..Stats::default()
        },
        verdict: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_match_order_and_are_unique() {
        let ids: Vec<Engine> = registry().iter().map(|e| e.id()).collect();
        assert_eq!(ids, Engine::all());
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn names_and_abbrevs_are_distinct() {
        let names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
        let abbrevs: Vec<&str> = registry().iter().map(|e| e.abbrev()).collect();
        for list in [&names, &abbrevs] {
            let mut sorted = list.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), list.len(), "{list:?}");
        }
    }

    #[test]
    fn shared_transforms_compute_once() {
        let spec = canvas_easl::builtin::cmp();
        let derived = canvas_wp::derive_abstraction(&spec).unwrap();
        let program = Program::parse(
            "class Main { static void main() { Set s = new Set(); Iterator i = s.iterator(); i.next(); } }",
            &spec,
        )
        .unwrap();
        let method = program.main_method().unwrap();
        let shared = SharedTransforms::new();
        let cx = MethodContext {
            program: &program,
            method,
            spec: &spec,
            derived: &derived,
            entry: EntryAssumption::Clean,
            relational_budget: 1 << 14,
            tvla_budget: 50_000,
            budget: Budget::unlimited(),
            explain: false,
            shared: &shared,
            fds_seed: None,
        };
        let a = cx.boolprog() as *const BoolProgram;
        let b = cx.boolprog() as *const BoolProgram;
        assert_eq!(a, b, "second call must hit the cache");
        let t1 = cx.tvp_specialized() as *const TvpProgram;
        let t2 = cx.tvp_specialized() as *const TvpProgram;
        assert_eq!(t1, t2);
    }
}
