//! The staged conformance-certification pipeline (the paper's contribution).
//!
//! ```text
//! EASL spec ──derive (§4.1/4.2)──▶ Derived abstraction ─┐
//!                                                       │ certifier generation time
//! ══════════════════════════════════════════════════════╪══════════════════════════
//!                                                       │ client analysis time
//! mini-Java client ──instantiate (§4.3/§5.4)──▶ engine ─┴─▶ Report
//! ```
//!
//! [`Certifier::from_spec`] runs the derivation once; [`Certifier::certify`]
//! then analyses any number of clients with any [`Engine`]:
//!
//! * [`Engine::ScmpFds`] — the polynomial precise certifier for clients with
//!   component references in locals/statics (§4);
//! * [`Engine::ScmpRelational`] — the exponential relational oracle (§4.6);
//! * [`Engine::ScmpInterproc`] — context-sensitive interprocedural (§8);
//! * [`Engine::TvlaRelational`] / [`Engine::TvlaIndependent`] — the
//!   first-order predicate abstraction on the TVLA-style engine (§5), for
//!   clients that store component references in the heap;
//! * [`Engine::GenericSsgRelational`] / [`Engine::GenericSsgIndependent`] —
//!   the storage-shape-graph baseline (§3/§4.4);
//! * [`Engine::GenericAllocSite`] — the allocation-site baseline (§3).
//!
//! # Example
//!
//! ```
//! use canvas_core::{Certifier, Engine};
//!
//! let certifier = Certifier::from_spec(canvas_easl::builtin::cmp())?;
//! let report = certifier.certify_source(
//!     "class Main { static void main() {
//!          Set s = new Set();
//!          Iterator i = s.iterator();
//!          s.add(\"x\");
//!          i.next();
//!      } }",
//!     Engine::ScmpFds,
//! )?;
//! assert_eq!(report.violations.len(), 1);
//! # Ok::<(), canvas_core::CertifyError>(())
//! ```

// the panic-free frontier: code reachable from external input must
// return typed errors, never panic (test code is exempt)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod certifier;
mod engine;
mod error;
mod report;

pub use canvas_abstraction::{CellSolution, CertCell, CertFormatError, CertViolation, Certificate};
pub use certifier::{Certifier, CertifyError, Engine};
pub use engine::{registry, AnalysisEngine, MethodContext, PreparedProgram, SharedTransforms};
pub use error::{CanvasError, ErrorKind, Stage};
pub use report::{Report, Stats, Verdict, Violation, Witness, WitnessStep};
