//! Certification reports: violations, witness evidence, statistics, and the
//! rustc-style `--explain` rendering.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use canvas_diagnostics::{Diagnostic, Label};

/// One step of a violation's witness trace, in source terms: the location
/// whose instruction established `fact` on the path to the violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WitnessStep {
    /// 1-based source line (`0` = the establishing instruction has no
    /// source location, e.g. compiler-inserted glue).
    pub line: u32,
    /// 1-based source column (`0` with `line == 0`).
    pub col: u32,
    /// The establishing instruction, human-readable (e.g. `v.add("x")`).
    pub what: String,
    /// The established fact (e.g. `stale{i1}`).
    pub fact: String,
}

/// The evidence attached to a violation when `--explain` is on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Witness {
    /// A chain of fact-establishment steps ending at the violating use
    /// (empty when the precondition is violated unconditionally). The
    /// solvers validate these chains against the boolean-program semantics
    /// (see `canvas_dataflow::provenance::replay`).
    Trace(Vec<WitnessStep>),
    /// The engine cannot produce a witness; the reason is reported instead
    /// of a fabricated trace.
    Unavailable(&'static str),
}

/// A potential conformance violation.
///
/// Equality, ordering, and hashing ignore the witness: two reports of the
/// same `(method, line, col, what)` are the *same* violation (inlining can
/// duplicate a site per inline copy), and [`Report::normalize`] merges them,
/// keeping the most informative witness.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Qualified name of the containing method, e.g. `Main.main`.
    pub method: String,
    /// 1-based source line of the offending call.
    pub line: u32,
    /// 1-based source column of the offending call.
    pub col: u32,
    /// Human-readable description, e.g. `i.next()`.
    pub what: String,
    /// Witness evidence (`None` unless the certifier ran with explanations
    /// enabled).
    pub witness: Option<Witness>,
}

impl Violation {
    fn key(&self) -> (&str, u32, u32, &str) {
        (&self.method, self.line, self.col, &self.what)
    }
}

impl PartialEq for Violation {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Violation {}

impl PartialOrd for Violation {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Violation {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

impl Hash for Violation {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: line {}: {}", self.method, self.line, self.what)
    }
}

/// Work/size statistics of one certification run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Wall-clock analysis time (client analysis only — derivation happens
    /// at certifier-generation time).
    pub duration: Duration,
    /// Number of predicate instances / predicates in play.
    pub predicates: usize,
    /// Engine work units (edge visits, structure-transformer applications,
    /// valuation transfers — engine-specific but comparable per engine).
    pub work: usize,
    /// Peak per-node abstract-state size (1 for single-state engines).
    pub max_states: usize,
    /// Whether a state budget was exhausted (result degraded to
    /// conservative).
    pub exhausted: bool,
}

/// Whether a certification run produced a definitive answer.
///
/// Certification is a three-valued question: *certified*, *potential
/// violations*, or — when the resource governor stopped an engine early —
/// *inconclusive*. An inconclusive run is a sound "cannot certify": it never
/// upgrades to certification, mirroring the conservative-analysis contract.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Verdict {
    /// Every fixpoint ran to completion; `violations` is the engine's full
    /// answer.
    #[default]
    Complete,
    /// The resource governor (step budget, deadline, or state budget)
    /// stopped the engine early. Absence of violations does *not* certify
    /// the client.
    Inconclusive {
        /// Why, e.g. `step budget of 1000 exhausted`.
        reason: String,
    },
}

impl Verdict {
    /// The exhaustion reason, if inconclusive.
    pub fn reason(&self) -> Option<&str> {
        match self {
            Verdict::Complete => None,
            Verdict::Inconclusive { reason } => Some(reason),
        }
    }
}

/// The result of certifying one client.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Report {
    /// The engine used.
    pub engine: crate::Engine,
    /// Potential violations, ordered by (method, line, col).
    pub violations: Vec<Violation>,
    /// Run statistics.
    pub stats: Stats,
    /// Whether the engine ran to completion or was stopped by the governor.
    pub verdict: Verdict,
}

static INCONCLUSIVE_REPORTS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::non_deterministic("certifier.inconclusive_reports");

impl Report {
    /// An inconclusive report: the governor stopped `engine` early.
    /// Counted in telemetry (non-deterministic: deadline trips depend on
    /// wall-clock).
    pub fn inconclusive(engine: crate::Engine, reason: String, stats: Stats) -> Report {
        INCONCLUSIVE_REPORTS.incr();
        Report { engine, violations: Vec::new(), stats, verdict: Verdict::Inconclusive { reason } }
    }

    /// The violation lines (convenience for tests and tables).
    pub fn lines(&self) -> Vec<u32> {
        self.violations.iter().map(|v| v.line).collect()
    }

    /// Whether the client is certified conformant: no potential violation
    /// *and* a complete run (an inconclusive run certifies nothing).
    pub fn certified(&self) -> bool {
        self.violations.is_empty() && !self.is_inconclusive()
    }

    /// Whether the governor stopped the engine before a definitive answer.
    pub fn is_inconclusive(&self) -> bool {
        matches!(self.verdict, Verdict::Inconclusive { .. })
    }

    /// Folds another per-method report into this one: violations
    /// concatenate (callers [`Report::normalize`] once at the end),
    /// statistics aggregate (durations and work add, predicate counts and
    /// state peaks take the maximum, exhaustion is sticky), and any
    /// inconclusive verdict makes the whole report inconclusive (the first
    /// reason wins). The whole-program driver and the incremental certifier
    /// share this so cold and warm aggregation are the same code path.
    pub fn merge(&mut self, other: Report) {
        self.violations.extend(other.violations);
        self.stats.duration += other.stats.duration;
        self.stats.work += other.stats.work;
        self.stats.predicates = self.stats.predicates.max(other.stats.predicates);
        self.stats.max_states = self.stats.max_states.max(other.stats.max_states);
        self.stats.exhausted |= other.stats.exhausted;
        if self.verdict == Verdict::Complete {
            self.verdict = other.verdict;
        }
    }

    /// Sorts the violations and merges duplicates of the same source site
    /// (inlining replicates call sites, so one source violation can be
    /// reported once per inline copy), keeping the most informative witness
    /// of each group.
    pub fn normalize(&mut self) {
        fn rank(w: &Option<Witness>) -> u8 {
            match w {
                None => 0,
                Some(Witness::Unavailable(_)) => 1,
                Some(Witness::Trace(_)) => 2,
            }
        }
        self.violations.sort();
        let mut out: Vec<Violation> = Vec::with_capacity(self.violations.len());
        for v in self.violations.drain(..) {
            match out.last_mut() {
                Some(last) if *last == v => {
                    if rank(&v.witness) > rank(&last.witness) {
                        last.witness = v.witness;
                    }
                }
                _ => out.push(v),
            }
        }
        self.violations = out;
    }

    /// Renders every violation as a rustc-style labeled diagnostic against
    /// the client source (`file` is the display name shown in `-->` lines).
    /// Violations without witness data fall back to a location-only
    /// diagnostic.
    pub fn render_explained(&self, file: &str, source: &str) -> String {
        let mut out = String::new();
        if let Verdict::Inconclusive { reason } = &self.verdict {
            let warn = Diagnostic::warning(format!("analysis inconclusive: {reason}"), file)
                .with_note(format!(
                    "the {} engine was stopped by the resource governor; absence of \
                     reported violations does not certify the client",
                    self.engine
                ));
            out.push_str(&warn.render(source));
            if self.violations.is_empty() {
                return out;
            }
            out.push('\n');
        } else if self.certified() {
            return format!("{}: no potential violations — client certified\n", self.engine);
        }
        for (k, v) in self.violations.iter().enumerate() {
            if k > 0 {
                out.push('\n');
            }
            out.push_str(&explain_violation(v, file).render(source));
        }
        out
    }
}

/// Builds the diagnostic for one violation from its witness.
fn explain_violation(v: &Violation, file: &str) -> Diagnostic {
    let mut d = Diagnostic::error(
        format!("potential conformance violation: {} in {}", v.what, v.method),
        file,
    );
    match &v.witness {
        Some(Witness::Trace(steps)) => {
            for s in steps {
                if s.line > 0 {
                    d = d.with_label(Label::secondary(
                        s.line,
                        s.col,
                        format!("{} established here by {}", s.fact, s.what),
                    ));
                } else {
                    d = d.with_note(format!(
                        "{} established by {} (no source location)",
                        s.fact, s.what
                    ));
                }
            }
            let primary = match steps.last() {
                Some(last) => format!("{} requires !{}, which may hold here", v.what, last.fact),
                None => format!("{} violates its precondition unconditionally", v.what),
            };
            d = d.with_label(Label::primary(v.line, v.col, primary));
        }
        Some(Witness::Unavailable(reason)) => {
            d = d
                .with_label(Label::primary(
                    v.line,
                    v.col,
                    format!("{} may violate its precondition", v.what),
                ))
                .with_note(format!("no witness available: {reason}"));
        }
        None => {
            d = d.with_label(Label::primary(
                v.line,
                v.col,
                format!("{} may violate its precondition", v.what),
            ));
        }
    }
    d
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:?}: {} violation(s), {:?}, {} predicate(s), work {}",
            self.engine,
            self.violations.len(),
            self.stats.duration,
            self.stats.predicates,
            self.stats.work
        )?;
        if let Verdict::Inconclusive { reason } = &self.verdict {
            writeln!(f, "  inconclusive: {reason}")?;
        }
        for v in &self.violations {
            writeln!(f, "  potential violation at {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(line: u32, col: u32, witness: Option<Witness>) -> Violation {
        Violation { method: "Main.main".into(), line, col, what: "i.next()".into(), witness }
    }

    #[test]
    fn equality_and_ordering_ignore_the_witness() {
        let a = v(6, 9, None);
        let b = v(6, 9, Some(Witness::Unavailable("x")));
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        let mut hs = std::collections::HashSet::new();
        hs.insert(a);
        assert!(!hs.insert(b));
    }

    #[test]
    fn normalize_merges_duplicates_keeping_the_best_witness() {
        let trace = Witness::Trace(vec![WitnessStep {
            line: 5,
            col: 9,
            what: "s.add(\"x\")".into(),
            fact: "stale{i}".into(),
        }]);
        let mut r = Report {
            engine: crate::Engine::ScmpFds,
            violations: vec![
                v(9, 1, None),
                v(6, 9, Some(trace.clone())),
                v(6, 9, None),
                v(6, 9, Some(Witness::Unavailable("baseline"))),
            ],
            stats: Stats::default(),
            verdict: Verdict::default(),
        };
        r.normalize();
        assert_eq!(r.lines(), vec![6, 9]);
        assert_eq!(r.violations[0].witness, Some(trace));
    }

    #[test]
    fn explained_rendering_labels_trace_steps() {
        const SRC: &str = "\
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add(\"x\");
        i.next();
    }
}
";
        let witness = Witness::Trace(vec![WitnessStep {
            line: 5,
            col: 9,
            what: "s.add(\"x\")".into(),
            fact: "stale{i}".into(),
        }]);
        let r = Report {
            engine: crate::Engine::ScmpFds,
            violations: vec![v(6, 9, Some(witness))],
            stats: Stats::default(),
            verdict: Verdict::default(),
        };
        let text = r.render_explained("client.mj", SRC);
        assert!(text.contains("--> client.mj:6:9"), "{text}");
        assert!(text.contains("stale{i} established here by s.add(\"x\")"), "{text}");
        assert!(
            text.contains("^^^^^^^^ i.next() requires !stale{i}, which may hold here"),
            "{text}"
        );
    }

    #[test]
    fn explained_rendering_handles_unavailable_and_certified() {
        let r = Report {
            engine: crate::Engine::TvlaRelational,
            violations: vec![v(
                6,
                9,
                Some(Witness::Unavailable("the TVLA engine does not record provenance")),
            )],
            stats: Stats::default(),
            verdict: Verdict::default(),
        };
        let text = r.render_explained("client.mj", "a\nb\nc\nd\ne\n        i.next();\n");
        assert!(text.contains("no witness available: the TVLA engine"), "{text}");
        let certified = Report {
            engine: crate::Engine::ScmpFds,
            violations: vec![],
            stats: Stats::default(),
            verdict: Verdict::default(),
        };
        assert!(certified.render_explained("x", "").contains("certified"));
    }

    #[test]
    fn inconclusive_reports_do_not_certify_and_render_a_warning() {
        let r = Report::inconclusive(
            crate::Engine::ScmpFds,
            "step budget of 10 exhausted".into(),
            Stats::default(),
        );
        assert!(!r.certified());
        assert!(r.is_inconclusive());
        assert_eq!(r.verdict.reason(), Some("step budget of 10 exhausted"));
        let text = r.render_explained("client.mj", "");
        assert!(text.contains("warning: analysis inconclusive: step budget of 10"), "{text}");
        assert!(text.contains("does not certify"), "{text}");
        assert!(r.to_string().contains("inconclusive: step budget of 10"), "{}", r);
    }

    #[test]
    fn display_is_unchanged_by_the_witness() {
        let a = v(6, 9, Some(Witness::Unavailable("r")));
        assert_eq!(a.to_string(), "Main.main: line 6: i.next()");
    }
}
