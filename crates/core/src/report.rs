//! Certification reports.

use std::fmt;
use std::time::Duration;

/// A potential conformance violation.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Violation {
    /// Qualified name of the containing method, e.g. `Main.main`.
    pub method: String,
    /// 1-based source line of the offending call.
    pub line: u32,
    /// Human-readable description, e.g. `i.next()`.
    pub what: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: line {}: {}", self.method, self.line, self.what)
    }
}

/// Work/size statistics of one certification run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Wall-clock analysis time (client analysis only — derivation happens
    /// at certifier-generation time).
    pub duration: Duration,
    /// Number of predicate instances / predicates in play.
    pub predicates: usize,
    /// Engine work units (edge visits, structure-transformer applications,
    /// valuation transfers — engine-specific but comparable per engine).
    pub work: usize,
    /// Peak per-node abstract-state size (1 for single-state engines).
    pub max_states: usize,
    /// Whether a state budget was exhausted (result degraded to
    /// conservative).
    pub exhausted: bool,
}

/// The result of certifying one client.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Report {
    /// The engine used.
    pub engine: crate::Engine,
    /// Potential violations, ordered by (method, line).
    pub violations: Vec<Violation>,
    /// Run statistics.
    pub stats: Stats,
}

impl Report {
    /// The violation lines (convenience for tests and tables).
    pub fn lines(&self) -> Vec<u32> {
        self.violations.iter().map(|v| v.line).collect()
    }

    /// Whether the client is certified conformant (no potential violation).
    pub fn certified(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:?}: {} violation(s), {:?}, {} predicate(s), work {}",
            self.engine,
            self.violations.len(),
            self.stats.duration,
            self.stats.predicates,
            self.stats.work
        )?;
        for v in &self.violations {
            writeln!(f, "  potential violation at {v}")?;
        }
        Ok(())
    }
}
