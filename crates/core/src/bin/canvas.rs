//! `canvas` — the command-line certifier.
//!
//! ```text
//! canvas derive  --spec <cmp|grp|imp|aop|PATH.easl> [--metrics]
//! canvas certify --spec <...> [--engine <name>] [--whole-program|--inline]
//!                [--explain] [--trace-out PATH] [--metrics] CLIENT.mj
//! canvas engines
//! ```
//!
//! `--metrics` enables pipeline telemetry and prints a summary (counters,
//! timers) after the command's normal output. `--explain` records per-fact
//! provenance during the analysis and renders each violation as a
//! rustc-style labeled diagnostic with its witness trace. `--trace-out`
//! records solver/certification trace events and writes them as Chrome
//! Trace Format JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! Exit status: 0 = certified conformant, 1 = potential violations found,
//! 2 = usage/spec/client error.

use std::process::ExitCode;

use canvas_core::{Certifier, Engine};
use canvas_easl::Spec;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("canvas: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    match cmd {
        "engines" => {
            for e in canvas_core::registry() {
                println!(
                    "{:<26} {}",
                    e.name(),
                    if e.specialized() { "derived abstraction" } else { "generic baseline" }
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "derive" => {
            let opts = parse_opts(it.as_slice())?;
            canvas_telemetry::set_enabled(opts.metrics);
            let spec = load_spec(&opts.spec)?;
            println!("specification {} ({:?})", spec.name(), canvas_easl::classify(&spec));
            let certifier = Certifier::from_spec(spec).map_err(|e| e.to_string())?;
            println!("derived instrumentation-predicate families:");
            for f in certifier.derived().families() {
                println!("  {f}");
            }
            let stats = certifier.derived().stats();
            println!(
                "derivation: {} WP computations, {} equivalence checks, converged in {} rounds",
                stats.wp_count,
                stats.equiv_checks,
                stats.families_discovered.len()
            );
            if opts.metrics {
                print!("{}", canvas_telemetry::snapshot());
            }
            Ok(ExitCode::SUCCESS)
        }
        "certify" => {
            let opts = parse_opts(it.as_slice())?;
            canvas_telemetry::set_enabled(opts.metrics);
            canvas_telemetry::trace::set_tracing(opts.trace_out.is_some());
            let client_path =
                opts.client.as_deref().ok_or("certify needs a client file argument")?;
            let source = std::fs::read_to_string(client_path)
                .map_err(|e| format!("cannot read {client_path}: {e}"))?;
            let spec = load_spec(&opts.spec)?;
            let certifier =
                Certifier::from_spec(spec).map_err(|e| e.to_string())?.with_explain(opts.explain);
            let program = canvas_minijava::Program::parse(&source, certifier.spec())
                .map_err(|e| format!("{client_path}: {e}"))?;
            let report = if opts.inline {
                certifier.certify_inlined(&program, opts.engine)
            } else if opts.whole_program {
                certifier.certify_program(&program, opts.engine)
            } else {
                certifier.certify(&program, opts.engine)
            }
            .map_err(|e| e.to_string())?;
            if opts.explain {
                print!("{}", report.render_explained(client_path, &source));
            } else {
                print!("{report}");
            }
            if opts.metrics {
                print!("{}", canvas_telemetry::snapshot());
            }
            if let Some(path) = &opts.trace_out {
                let json = canvas_telemetry::trace::export_chrome_json();
                std::fs::write(path, &json)
                    .map_err(|e| format!("cannot write trace {path}: {e}"))?;
                eprintln!("canvas: wrote trace to {path}");
            }
            Ok(if report.certified() { ExitCode::SUCCESS } else { ExitCode::from(1) })
        }
        _ => {
            println!(
                "usage:\n  canvas derive  --spec <cmp|grp|imp|aop|PATH.easl> [--metrics]\n  \
                 canvas certify --spec <...> [--engine <name>] [--whole-program|--inline] \
                 [--explain] [--trace-out PATH] [--metrics] CLIENT.mj\n  \
                 canvas engines"
            );
            Ok(ExitCode::from(2))
        }
    }
}

struct Opts {
    spec: String,
    engine: Engine,
    whole_program: bool,
    inline: bool,
    metrics: bool,
    explain: bool,
    trace_out: Option<String>,
    client: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        spec: "cmp".to_string(),
        engine: Engine::ScmpFds,
        whole_program: false,
        inline: false,
        metrics: false,
        explain: false,
        trace_out: None,
        client: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spec" => {
                opts.spec = it.next().ok_or("--spec needs a value")?.clone();
            }
            "--engine" => {
                let name = it.next().ok_or("--engine needs a value")?;
                opts.engine = Engine::by_name(name)
                    .ok_or_else(|| format!("unknown engine {name:?} (see `canvas engines`)"))?;
            }
            "--whole-program" => opts.whole_program = true,
            "--inline" => opts.inline = true,
            "--metrics" => opts.metrics = true,
            "--explain" => opts.explain = true,
            "--trace-out" => {
                opts.trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}"));
            }
            other => {
                if opts.client.replace(other.to_string()).is_some() {
                    return Err("more than one client file given".to_string());
                }
            }
        }
    }
    Ok(opts)
}

fn load_spec(name: &str) -> Result<Spec, String> {
    match name {
        "cmp" => Ok(canvas_easl::builtin::cmp()),
        "grp" => Ok(canvas_easl::builtin::grp()),
        "imp" => Ok(canvas_easl::builtin::imp()),
        "aop" => Ok(canvas_easl::builtin::aop()),
        path => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read spec {path}: {e}"))?;
            let stem = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("spec")
                .to_string();
            Spec::parse(stem, &src).map_err(|e| format!("{path}: {e}"))
        }
    }
}
