//! The certifier: derived abstraction + analysis engine.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use canvas_abstraction::{
    bp_digest, derived_digest, digest_str, CellSolution, CertCell, CertViolation, Certificate,
    EntryAssumption,
};
use canvas_easl::Spec;
use canvas_faults::Budget;
use canvas_minijava::{MethodIr, Program};
use canvas_wp::{derive_abstraction, DeriveError, Derived};

use crate::engine::{registry, AnalysisEngine, MethodContext, PreparedProgram, SharedTransforms};
use crate::report::Report;

/// The available certification engines (paper §3–§8) with their
/// time/space/precision tradeoffs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Engine {
    /// Specialized nullary abstraction + polynomial may-be-1 dataflow (§4.3).
    ScmpFds,
    /// Specialized nullary abstraction + exponential relational dataflow.
    ScmpRelational,
    /// Context-sensitive interprocedural SCMP certification (§8).
    ScmpInterproc,
    /// First-order predicate abstraction + TVLA engine, set of structures
    /// per point (§5, relational mode).
    TvlaRelational,
    /// First-order predicate abstraction + TVLA engine, one structure per
    /// point (§5, independent-attribute mode).
    TvlaIndependent,
    /// Generic composite-program translation + shape-graph analysis
    /// (§3/§4.4 baseline), relational mode.
    GenericSsgRelational,
    /// The shape-graph baseline in independent-attribute mode.
    GenericSsgIndependent,
    /// Generic allocation-site must-alias baseline (§3).
    GenericAllocSite,
}

impl Engine {
    /// All engines, in evaluation-table order (the [`registry`] order).
    pub fn all() -> Vec<Engine> {
        registry().iter().map(|e| e.id()).collect()
    }

    /// Looks an engine up by its full name (e.g. `scmp-fds`).
    pub fn by_name(name: &str) -> Option<Engine> {
        registry().iter().find(|e| e.name() == name).map(|e| e.id())
    }

    /// Whether the engine uses the derived specialized abstraction.
    pub fn specialized(self) -> bool {
        self.info().specialized()
    }

    /// Short column label for the wide evaluation tables, e.g. `fds`.
    pub fn abbrev(self) -> &'static str {
        self.info().abbrev()
    }

    /// Why this engine cannot emit a replayable certificate, or `None` for
    /// the engines whose fixpoint solutions `canvas-check` can replay.
    pub fn certificate_unsupported(self) -> Option<&'static str> {
        self.info().certificate_unsupported()
    }

    /// The registry entry backing this id.
    // the registry is a static table covering every variant; a miss is a
    // compile-time-shaped bug, not an input-dependent condition
    #[allow(clippy::expect_used)]
    fn info(self) -> &'static dyn AnalysisEngine {
        registry()
            .iter()
            .copied()
            .find(|e| e.id() == self)
            .expect("every Engine variant is registered")
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.info().name())
    }
}

/// Certification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CertifyError {
    /// Abstraction derivation failed (budget exceeded).
    Derive(DeriveError),
    /// The client failed to parse or lower.
    Source(canvas_minijava::SourceError),
    /// The client has no static `main` entry point.
    NoMain,
    /// The relational engine exceeded its state budget.
    StateBudget {
        /// Engine that blew up.
        engine: Engine,
    },
    /// An engine panicked; the panic was contained by the isolation layer
    /// and converted into this structured error.
    Panicked {
        /// Engine whose solve panicked.
        engine: Engine,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::Derive(e) => write!(f, "derivation failed: {e}"),
            CertifyError::Source(e) => write!(f, "client error: {e}"),
            CertifyError::NoMain => f.write_str("client has no static main method"),
            CertifyError::StateBudget { engine } => {
                write!(f, "{engine} exceeded its state budget")
            }
            CertifyError::Panicked { engine, message } => {
                write!(f, "{engine} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

impl From<DeriveError> for CertifyError {
    fn from(e: DeriveError) -> Self {
        CertifyError::Derive(e)
    }
}

impl From<canvas_minijava::SourceError> for CertifyError {
    fn from(e: canvas_minijava::SourceError) -> Self {
        CertifyError::Source(e)
    }
}

/// A certifier for one component specification: the derived abstraction
/// paired with the analysis engines (stage 3 of the paper's §1.3 pipeline).
#[derive(Clone, Debug)]
pub struct Certifier {
    spec: Spec,
    derived: Derived,
    relational_budget: usize,
    tvla_budget: usize,
    budget: Budget,
    explain: bool,
}

impl Certifier {
    /// Derives the specialized abstraction for `spec` (certifier-generation
    /// time; possibly expensive, done once).
    ///
    /// # Errors
    ///
    /// Returns [`CertifyError::Derive`] if the derivation budget is
    /// exceeded (the spec is probably not mutation-restricted, §6).
    pub fn from_spec(spec: Spec) -> Result<Certifier, CertifyError> {
        let _derive_phase = canvas_telemetry::phase::DERIVE.span();
        let derived = derive_abstraction(&spec)?;
        Ok(Certifier {
            spec,
            derived,
            relational_budget: 1 << 14,
            tvla_budget: 50_000,
            budget: canvas_faults::process_budget(),
            explain: false,
        })
    }

    /// Like [`Certifier::from_spec`], but falls back to the *conservative*
    /// abstraction (§4.5) instead of failing when the derivation does not
    /// converge within `max_families`: update disjuncts that would need new
    /// predicate families degrade to havoc, so the certifier stays sound at
    /// the price of possible extra false alarms.
    ///
    /// # Errors
    ///
    /// Only source-independent internal errors (none currently).
    pub fn from_spec_conservative(
        spec: Spec,
        max_families: usize,
    ) -> Result<Certifier, CertifyError> {
        let derived = canvas_wp::derive_conservative(&spec, max_families)?;
        Ok(Certifier {
            spec,
            derived,
            relational_budget: 1 << 14,
            tvla_budget: 50_000,
            budget: canvas_faults::process_budget(),
            explain: false,
        })
    }

    /// The component specification.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The derived abstraction (families + method abstractions).
    pub fn derived(&self) -> &Derived {
        &self.derived
    }

    /// The state budgets for the exponential engines, `(relational, tvla)`.
    pub fn budgets(&self) -> (usize, usize) {
        (self.relational_budget, self.tvla_budget)
    }

    /// The shared resource-governor budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Whether witness recording is on.
    pub fn explain(&self) -> bool {
        self.explain
    }

    /// Sets the state budgets for the exponential engines.
    pub fn with_budgets(mut self, relational: usize, tvla: usize) -> Certifier {
        self.relational_budget = relational;
        self.tvla_budget = tvla;
        self
    }

    /// Sets the shared resource-governor budget (steps, deadline, states).
    /// Defaults to the process-wide budget (unlimited unless a binary
    /// installed one via `canvas_faults::set_process_budget`). Exhaustion
    /// degrades reports to [`crate::report::Verdict::Inconclusive`].
    pub fn with_budget(mut self, budget: Budget) -> Certifier {
        self.budget = budget;
        self
    }

    /// Turns witness recording on: the solver engines take their
    /// provenance-recording paths and every violation carries a
    /// [`crate::report::Witness`]. Off by default (the plain paths stay
    /// within the telemetry-overhead budget).
    pub fn with_explain(mut self, on: bool) -> Certifier {
        self.explain = on;
        self
    }

    /// Parses a client and certifies it from `main`.
    ///
    /// # Errors
    ///
    /// See [`Certifier::certify`], plus source errors.
    pub fn certify_source(&self, src: &str, engine: Engine) -> Result<Report, CertifyError> {
        let program = Program::parse(src, &self.spec)?;
        self.certify(&program, engine)
    }

    /// Certifies a parsed client from its `main` method.
    ///
    /// Intraprocedural engines (everything except
    /// [`Engine::ScmpInterproc`]) analyse `main` with clean entry state and
    /// treat client calls conservatively.
    ///
    /// # Errors
    ///
    /// [`CertifyError::NoMain`] without an entry point;
    /// [`CertifyError::StateBudget`] when a relational engine blows up.
    pub fn certify(&self, program: &Program, engine: Engine) -> Result<Report, CertifyError> {
        let main = program.main_method().ok_or(CertifyError::NoMain)?;
        self.certify_method(program, main, engine, EntryAssumption::Clean)
    }

    /// Whole-program certification: the interprocedural engine analyses the
    /// call graph from `main`; intraprocedural engines analyse `main` with
    /// clean entry plus every other method out of context (unknown entry),
    /// so `requires` sites in helper methods are covered too.
    ///
    /// # Errors
    ///
    /// As [`Certifier::certify`].
    pub fn certify_program(
        &self,
        program: &Program,
        engine: Engine,
    ) -> Result<Report, CertifyError> {
        self.certify_program_prepared(program, &PreparedProgram::new(program), engine)
    }

    /// Like [`Certifier::certify_program`], but reuses `prepared`'s transform
    /// caches, so running several engines over one program computes each
    /// boolean-program / TVP translation only once.
    ///
    /// # Errors
    ///
    /// As [`Certifier::certify`].
    pub fn certify_program_prepared(
        &self,
        program: &Program,
        prepared: &PreparedProgram,
        engine: Engine,
    ) -> Result<Report, CertifyError> {
        if engine == Engine::ScmpInterproc {
            return self.certify(program, engine);
        }
        let main = program.main_method().ok_or(CertifyError::NoMain)?;
        let mut report = self.certify_method_shared(
            program,
            main,
            engine,
            EntryAssumption::Clean,
            prepared.shared(main, EntryAssumption::Clean),
        )?;
        for m in program.methods() {
            if m.id == main.id {
                continue;
            }
            let r = self.certify_method_shared(
                program,
                m,
                engine,
                EntryAssumption::Unknown,
                prepared.shared(m, EntryAssumption::Unknown),
            )?;
            // any inconclusive method makes the whole program inconclusive
            // (first reason wins; the others are duplicates in practice)
            report.merge(r);
        }
        report.normalize();
        Ok(report)
    }

    /// Inlines every client call into `main` (non-recursive programs only)
    /// and certifies the resulting single-procedure program — this gives the
    /// intraprocedural engines (notably TVLA, §5) whole-program precision.
    ///
    /// # Errors
    ///
    /// Fails on recursive programs, on inlining blow-up, or as
    /// [`Certifier::certify`].
    pub fn certify_inlined(
        &self,
        program: &Program,
        engine: Engine,
    ) -> Result<Report, CertifyError> {
        let inlined = canvas_minijava::inline::inline_main(program, 100_000)?;
        self.certify(&inlined, engine)
    }

    /// Certifies a single method under an explicit entry assumption (used
    /// for out-of-context method certification).
    ///
    /// # Errors
    ///
    /// As [`Certifier::certify`].
    pub fn certify_method(
        &self,
        program: &Program,
        method: &MethodIr,
        engine: Engine,
        entry: EntryAssumption,
    ) -> Result<Report, CertifyError> {
        self.certify_method_shared(program, method, engine, entry, &SharedTransforms::new())
    }

    /// Like [`Certifier::certify_method`], but reuses `shared`'s transform
    /// caches, so engines analysing the same `(method, entry)` pair compute
    /// the boolean program and the TVP translations only once.
    ///
    /// # Errors
    ///
    /// As [`Certifier::certify`].
    pub fn certify_method_shared(
        &self,
        program: &Program,
        method: &MethodIr,
        engine: Engine,
        entry: EntryAssumption,
        shared: &SharedTransforms,
    ) -> Result<Report, CertifyError> {
        let start = Instant::now();
        // the guard (not the format!) is what must be cheap when tracing is off
        let _trace = canvas_telemetry::trace::tracing().then(|| {
            canvas_telemetry::trace::span(
                &format!("certify {} [{engine}]", method.qualified_name()),
                "certify",
            )
        });
        let cx = MethodContext {
            program,
            method,
            spec: &self.spec,
            derived: &self.derived,
            entry,
            relational_budget: self.relational_budget,
            tvla_budget: self.tvla_budget,
            budget: self.budget,
            explain: self.explain,
            shared,
            fds_seed: None,
        };
        // Isolation layer: a panicking engine must not take down the caller
        // (one method of one suite case, or one request of a service). The
        // panic surfaces as a structured `CertifyError::Panicked` instead.
        let _solve_phase = canvas_telemetry::phase::SOLVE.span();
        let run = catch_unwind(AssertUnwindSafe(|| engine.info().run(&cx)));
        let mut report = match run {
            Ok(result) => result?,
            Err(payload) => {
                return Err(CertifyError::Panicked {
                    engine,
                    message: panic_message(payload.as_ref()),
                })
            }
        };
        report.stats.duration = start.elapsed();
        report.normalize();
        Ok(report)
    }

    /// Like [`Certifier::certify_method_shared`], but also returns the
    /// certificate cell carrying the engine's fixpoint solution, when the
    /// engine emits one (the boolean SCMP engines on conclusive runs).
    ///
    /// # Errors
    ///
    /// As [`Certifier::certify`].
    pub fn certify_method_shared_certified(
        &self,
        program: &Program,
        method: &MethodIr,
        engine: Engine,
        entry: EntryAssumption,
        shared: &SharedTransforms,
    ) -> Result<(Report, Option<CertCell>), CertifyError> {
        self.certify_method_shared_certified_seeded(program, method, engine, entry, shared, None)
    }

    /// Like [`Certifier::certify_method_shared_certified`], but optionally
    /// seeding the FDS engine's fixpoint from a cached solution of an
    /// earlier version of the method (within-method delta re-solve — see
    /// [`canvas_dataflow::delta`]). Engines other than FDS ignore the
    /// seed; a seed that fails validation falls back to a cold solve, so
    /// the result is always the same fixpoint a cold run computes.
    ///
    /// # Errors
    ///
    /// As [`Certifier::certify`].
    pub fn certify_method_shared_certified_seeded(
        &self,
        program: &Program,
        method: &MethodIr,
        engine: Engine,
        entry: EntryAssumption,
        shared: &SharedTransforms,
        fds_seed: Option<&canvas_dataflow::DeltaSeed>,
    ) -> Result<(Report, Option<CertCell>), CertifyError> {
        let start = Instant::now();
        let cx = MethodContext {
            program,
            method,
            spec: &self.spec,
            derived: &self.derived,
            entry,
            relational_budget: self.relational_budget,
            tvla_budget: self.tvla_budget,
            budget: self.budget,
            explain: self.explain,
            shared,
            fds_seed,
        };
        let _solve_phase = canvas_telemetry::phase::SOLVE.span();
        let run = catch_unwind(AssertUnwindSafe(|| engine.info().run_certified(&cx)));
        let (mut report, solution) = match run {
            Ok(result) => result?,
            Err(payload) => {
                return Err(CertifyError::Panicked {
                    engine,
                    message: panic_message(payload.as_ref()),
                })
            }
        };
        report.stats.duration = start.elapsed();
        report.normalize();
        let cell = solution.map(|solution| {
            // the engine ran on cx.boolprog(), so this re-read is a cache hit
            let bp = cx.boolprog();
            CertCell {
                method: method.qualified_name(),
                entry,
                preds: bp.preds.len() as u32,
                bp_digest: bp_digest(bp),
                solution,
            }
        });
        Ok((report, cell))
    }

    /// Whole-program certification that also emits a replayable
    /// [`Certificate`]: one solution cell per `(method, entry)` pair plus
    /// the normalized violation list, bound to this exact `source` text,
    /// spec, and derived abstraction by digest.
    ///
    /// Engines that cannot express a replayable solution (the TVLA/heap
    /// family and the interprocedural engine), and inconclusive runs,
    /// produce `unavailable` cells: the certificate still records the
    /// verdict but `canvas-check` will reject it as uncheckable — the
    /// trusted checker never takes an engine's word for anything.
    ///
    /// # Errors
    ///
    /// As [`Certifier::certify`].
    pub fn certify_with_certificate(
        &self,
        source: &str,
        program: &Program,
        engine: Engine,
    ) -> Result<(Report, Certificate), CertifyError> {
        let prepared = PreparedProgram::new(program);
        let mut cells = Vec::new();
        let report = if let Some(reason) = engine.info().certificate_unsupported() {
            let report = self.certify_program_prepared(program, &prepared, engine)?;
            cells.push(CertCell {
                method: "<whole-program>".to_string(),
                entry: EntryAssumption::Clean,
                preds: 0,
                bp_digest: 0,
                solution: CellSolution::Unavailable { reason: reason.to_string() },
            });
            report
        } else {
            let main = program.main_method().ok_or(CertifyError::NoMain)?;
            let mut push =
                |report: &Report, cell: Option<CertCell>, m: &MethodIr, entry: EntryAssumption| {
                    cells.push(cell.unwrap_or_else(|| CertCell {
                        method: m.qualified_name(),
                        entry,
                        preds: 0,
                        bp_digest: 0,
                        solution: CellSolution::Unavailable {
                            reason: format!(
                                "inconclusive run ({}): no post-fixpoint reached",
                                report.verdict.reason().unwrap_or("budget exhausted")
                            ),
                        },
                    }));
                };
            let (mut report, cell) = self.certify_method_shared_certified(
                program,
                main,
                engine,
                EntryAssumption::Clean,
                prepared.shared(main, EntryAssumption::Clean),
            )?;
            push(&report, cell, main, EntryAssumption::Clean);
            for m in program.methods() {
                if m.id == main.id {
                    continue;
                }
                let (r, cell) = self.certify_method_shared_certified(
                    program,
                    m,
                    engine,
                    EntryAssumption::Unknown,
                    prepared.shared(m, EntryAssumption::Unknown),
                )?;
                push(&r, cell, m, EntryAssumption::Unknown);
                report.merge(r);
            }
            report.normalize();
            report
        };
        let certificate = Certificate {
            engine: engine.to_string(),
            spec: self.spec.name().to_string(),
            derived: derived_digest(&self.derived),
            source: digest_str(source),
            cells,
            violations: report
                .violations
                .iter()
                .map(|v| CertViolation {
                    method: v.method.clone(),
                    line: v.line,
                    col: v.col,
                    what: v.what.clone(),
                })
                .collect(),
        };
        Ok((report, certificate))
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("x");
        if (true) { i1.next(); }
    }
}
"#;

    #[test]
    fn specialized_engines_agree_on_fig3() {
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
        for engine in [
            Engine::ScmpFds,
            Engine::ScmpRelational,
            Engine::ScmpInterproc,
            Engine::TvlaRelational,
            Engine::TvlaIndependent,
        ] {
            let r = c.certify_source(FIG3, engine).unwrap();
            assert_eq!(r.lines(), vec![10, 13], "{engine}: {r}");
        }
    }

    #[test]
    fn generic_ssg_false_alarms_on_fig3() {
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
        let r = c.certify_source(FIG3, Engine::GenericSsgRelational).unwrap();
        assert!(r.lines().contains(&11), "{r}");
    }

    #[test]
    fn alloc_site_false_alarms_on_version_loop() {
        let loop_src = r#"
class Main {
    static void main() {
        Set s = new Set();
        while (true) {
            s.add("x");
            for (Iterator i = s.iterator(); i.hasNext(); ) { i.next(); }
        }
    }
}
"#;
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
        let generic = c.certify_source(loop_src, Engine::GenericAllocSite).unwrap();
        assert!(!generic.certified());
        let specialized = c.certify_source(loop_src, Engine::ScmpFds).unwrap();
        assert!(specialized.certified(), "{specialized}");
    }

    #[test]
    fn no_main_is_an_error() {
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
        let err = c.certify_source("class A { void m() { } }", Engine::ScmpFds).unwrap_err();
        assert!(matches!(err, CertifyError::NoMain));
    }

    #[test]
    fn source_errors_propagate() {
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
        let err = c.certify_source("class {", Engine::ScmpFds).unwrap_err();
        assert!(matches!(err, CertifyError::Source(_)));
        assert!(err.to_string().contains("client error"));
    }

    #[test]
    fn report_display_and_helpers() {
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
        let r = c
            .certify_source(
                "class Main { static void main() { Set s = new Set(); Iterator i = s.iterator(); s.add(\"x\"); i.next(); } }",
                Engine::ScmpFds,
            )
            .unwrap();
        assert!(!r.certified());
        let text = r.to_string();
        assert!(text.contains("i.next()"), "{text}");
        assert!(r.stats.predicates > 0);
    }

    #[test]
    fn budget_error_for_relational() {
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap().with_budgets(1, 50_000);
        // entry-unknown forking blows a budget of 1
        let program = Program::parse(
            "class A { void m(Iterator a, Iterator b, Set s) { a.next(); } }",
            c.spec(),
        )
        .unwrap();
        let m = program.method_named("A.m").unwrap();
        let err = c
            .certify_method(&program, m, Engine::ScmpRelational, EntryAssumption::Unknown)
            .unwrap_err();
        assert!(matches!(err, CertifyError::StateBudget { .. }));
    }

    #[test]
    fn all_engines_listed() {
        assert_eq!(Engine::all().len(), 8);
        assert!(Engine::ScmpFds.specialized());
        assert!(!Engine::GenericAllocSite.specialized());
        assert_eq!(Engine::ScmpFds.to_string(), "scmp-fds");
    }
}

#[cfg(test)]
mod conservative_tests {
    use super::*;

    #[test]
    fn conservative_certifier_is_usable_and_sound() {
        // the adversarial spec does not converge; the conservative certifier
        // still runs and flags the (real) misuse below
        let spec = canvas_easl::builtin::unbounded();
        let c = Certifier::from_spec_conservative(spec, 4).unwrap();
        let r = c
            .certify_source(
                r#"
class Main {
    static void main() {
        Cell a = new Cell();
        Cell b = new Cell();
        a.push(b);
        a.use(b);
    }
}
"#,
                Engine::ScmpFds,
            )
            .unwrap();
        // requires (prev == c.prev) compares a.prev (= b) to b.prev (= null):
        // genuinely violated, and the conservative certifier reports it
        assert_eq!(r.violations.len(), 1);
    }
}
