//! The seeded synthetic-corpus generator.
//!
//! Generates families of mini-Java CMP clients with *known ground truth*:
//! every program records the source lines the `scmp-fds` certifier must
//! report (and no others), so a fleet run doubles as a soundness/precision
//! oracle over the whole corpus. Four families vary the dimensions the
//! paper's evaluation sweeps:
//!
//! * `straightline` — independent set/iterator blocks, optional branch,
//!   violation = mutate-then-use without a refresh;
//! * `loops` — iterate-while-mutating loops under `while` nesting up to
//!   [`GenParams::max_loop_depth`] (the staleness facts grow around the
//!   back edge); the safe variant refreshes per iteration (the paper's
//!   version-loop idiom);
//! * `callgraph` — helper chains or fans; a use across a client call is
//!   reported by the intraprocedural engine (havoc), the safe variant
//!   refreshes after the call;
//! * `wide` — up to [`GenParams::max_methods`] self-contained methods,
//!   exercising per-method cells (and cross-program cache hits: small
//!   parameter spaces repeat layouts exactly).
//!
//! Determinism: program `i` is generated from `hash(seed, i)` alone, so
//! the corpus is byte-identical across runs *and* across generator thread
//! counts — the manifest digest is reproducible anywhere.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use canvas_core::CanvasError;
use canvas_incr::fingerprint::Hasher64;
use canvas_minijava::synth::{check_synthesized, SourceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Corpus-shape parameters. All sampling is driven by [`GenParams::seed`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GenParams {
    /// Number of programs to generate.
    pub programs: usize,
    /// Master seed; program `i` derives its own rng from `hash(seed, i)`.
    pub seed: u64,
    /// Upper bound on methods per program (`wide`/`callgraph` families).
    pub max_methods: usize,
    /// Upper bound on loop nesting (`loops` family).
    pub max_loop_depth: usize,
    /// Fraction of programs containing at least one genuine violation.
    pub violation_rate: f64,
}

impl Default for GenParams {
    fn default() -> GenParams {
        GenParams { programs: 100, seed: 1, max_methods: 4, max_loop_depth: 2, violation_rate: 0.3 }
    }
}

/// One generated client plus its ground truth.
#[derive(Clone, Debug)]
pub struct GeneratedProgram {
    /// Corpus-relative file name, e.g. `p00042.mj`.
    pub name: String,
    /// Which generator family produced it.
    pub family: &'static str,
    /// The mini-Java source.
    pub source: String,
    /// Source lines `scmp-fds` must report, ascending.
    pub expected: Vec<u32>,
}

/// Generates the corpus with the ambient worker count
/// (`CANVAS_EVAL_THREADS`-aware, see `canvas_suite::worker_count`).
///
/// # Errors
///
/// A generator bug (emitted source fails the frontend self-check).
pub fn generate(params: &GenParams) -> Result<Vec<GeneratedProgram>, CanvasError> {
    generate_with_threads(params, canvas_suite::worker_count(params.programs.max(1)))
}

/// As [`generate`] with an explicit thread count. The output is
/// byte-identical for every `threads` value: each program is a pure
/// function of `(params, index)`.
///
/// # Errors
///
/// As [`generate`].
pub fn generate_with_threads(
    params: &GenParams,
    threads: usize,
) -> Result<Vec<GeneratedProgram>, CanvasError> {
    let n = params.programs;
    let spec = canvas_easl::builtin::cmp();
    let slots: Vec<Mutex<Option<Result<GeneratedProgram, CanvasError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.clamp(1, n.max(1)) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let one = generate_one(params, i, &spec);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(one);
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(Ok(p)) => out.push(p),
            Some(Err(e)) => return Err(e),
            None => {
                return Err(CanvasError::new(
                    canvas_core::Stage::ClientFrontend,
                    canvas_core::ErrorKind::EnginePanic,
                    format!("generator worker died before producing program {i}"),
                ))
            }
        }
    }
    Ok(out)
}

/// Generates program `index` of the corpus — a pure function of
/// `(params, index)`.
fn generate_one(
    params: &GenParams,
    index: usize,
    spec: &canvas_easl::Spec,
) -> Result<GeneratedProgram, CanvasError> {
    let mut h = Hasher64::new();
    h.write_u64(params.seed);
    h.write_u64(index as u64);
    let mut rng = StdRng::seed_from_u64(h.finish().0);

    let violating = rng.gen_bool(params.violation_rate);
    let mut b = SourceBuilder::new("P");
    let (family, mut expected) = match rng.gen_range(0usize..4) {
        0 => ("straightline", straightline(&mut b, &mut rng, violating)),
        1 => ("loops", loops(&mut b, &mut rng, violating, params.max_loop_depth)),
        2 => ("callgraph", callgraph(&mut b, &mut rng, violating, params.max_methods)),
        _ => ("wide", wide(&mut b, &mut rng, violating, params.max_methods)),
    };
    expected.sort_unstable();
    let source = b.finish();
    // self-check: the emitted text must survive the real frontend, and a
    // violating program must actually contain component calls to violate
    check_synthesized(&source, spec).map_err(|e| CanvasError::client(&e))?;
    Ok(GeneratedProgram { name: format!("p{index:05}.mj"), family, source, expected })
}

/// Independent set/iterator blocks; at most one violating block.
fn straightline(b: &mut SourceBuilder, rng: &mut StdRng, violating: bool) -> Vec<u32> {
    let blocks = rng.gen_range(1usize..5);
    let bad = if violating { Some(rng.gen_range(0usize..blocks)) } else { None };
    let mut expected = Vec::new();
    b.open_block("static void main()");
    for k in 0..blocks {
        b.stmt(&format!("Set s{k} = new Set();"));
        b.stmt(&format!("s{k}.add(\"seed\");"));
        b.stmt(&format!("Iterator i{k} = s{k}.iterator();"));
        b.stmt(&format!("i{k}.next();"));
        if rng.gen_bool(0.5) {
            // a nondeterministic branch adds CFG edges without changing truth
            b.open_block("if (true)");
            b.stmt(&format!("i{k}.next();"));
            b.close_block();
        }
        if bad == Some(k) {
            b.stmt(&format!("s{k}.add(\"more\");"));
            expected.push(b.stmt(&format!("i{k}.next();")));
        } else {
            b.stmt(&format!("i{k} = s{k}.iterator();"));
            b.stmt(&format!("i{k}.next();"));
        }
    }
    b.close_block();
    expected
}

/// Iterate-while-mutating loops under `while` nesting; the safe variant is
/// the paper's version-loop (mutate, then refresh per outer iteration).
fn loops(b: &mut SourceBuilder, rng: &mut StdRng, violating: bool, max_depth: usize) -> Vec<u32> {
    let depth = rng.gen_range(1usize..max_depth.max(1) + 1);
    let uses = rng.gen_range(1usize..3);
    let mut expected = Vec::new();
    b.open_block("static void main()");
    b.stmt("Set s = new Set();");
    b.stmt("s.add(\"seed\");");
    for _ in 1..depth {
        b.open_block("while (true)");
    }
    if violating {
        b.open_block("for (Iterator i = s.iterator(); i.hasNext(); )");
        for _ in 0..uses {
            // stale from the second iteration on: every use is reported
            expected.push(b.stmt("i.next();"));
        }
        b.stmt("s.add(\"x\");");
        b.close_block();
    } else {
        b.stmt("s.add(\"grow\");");
        // refresh after the mutation: safe at any nesting depth
        b.open_block("for (Iterator i = s.iterator(); i.hasNext(); )");
        for _ in 0..uses {
            b.stmt("i.next();");
        }
        b.close_block();
    }
    // finish() closes the remaining while/class blocks
    expected
}

/// Helper chain or fan; a use across a client call is reported by the
/// intraprocedural engine (calls havoc component state).
fn callgraph(
    b: &mut SourceBuilder,
    rng: &mut StdRng,
    violating: bool,
    max_methods: usize,
) -> Vec<u32> {
    let helpers = rng.gen_range(1usize..max_methods.max(2));
    let chain = rng.gen_bool(0.5);
    let mutate_deep = rng.gen_bool(0.5);
    let mut expected = Vec::new();
    b.open_block("static void main()");
    b.stmt("Set s = new Set();");
    b.stmt("s.add(\"seed\");");
    b.stmt("Iterator i = s.iterator();");
    b.stmt("i.next();");
    if chain {
        b.stmt("h0(s);");
    } else {
        for k in 0..helpers {
            b.stmt(&format!("h{k}(s);"));
        }
    }
    if violating {
        expected.push(b.stmt("i.next();"));
    } else {
        b.stmt("i = s.iterator();");
        b.stmt("i.next();");
    }
    b.close_block();
    for k in 0..helpers {
        b.open_block(&format!("static void h{k}(Set x)"));
        if chain && k + 1 < helpers {
            b.stmt(&format!("h{}(x);", k + 1));
        } else if mutate_deep {
            b.stmt("x.add(\"deep\");");
        }
        b.close_block();
    }
    expected
}

/// Many self-contained methods: exercises per-method cells; violating
/// programs poison a nonempty subset of them.
fn wide(b: &mut SourceBuilder, rng: &mut StdRng, violating: bool, max_methods: usize) -> Vec<u32> {
    let m = rng.gen_range(2usize..max_methods.max(2) + 1);
    let mut bad: Vec<bool> = (0..m).map(|_| violating && rng.gen_bool(0.5)).collect();
    if violating && !bad.iter().any(|&x| x) {
        let pick = rng.gen_range(0usize..m);
        bad[pick] = true;
    }
    let mut expected = Vec::new();
    b.open_block("static void main()");
    for k in 0..m {
        b.stmt(&format!("w{k}();"));
    }
    b.close_block();
    for (k, &is_bad) in bad.iter().enumerate() {
        b.open_block(&format!("static void w{k}()"));
        b.stmt("Set s = new Set();");
        b.stmt("s.add(\"a\");");
        b.stmt("Iterator i = s.iterator();");
        b.stmt("i.next();");
        if is_bad {
            b.stmt("s.add(\"b\");");
            expected.push(b.stmt("i.next();"));
        }
        b.close_block();
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_core::{Certifier, Engine};
    use canvas_minijava::Program;

    /// The generator's contract: for every family and seed, `scmp-fds`
    /// reports exactly the recorded ground-truth lines. This is the oracle
    /// the whole fleet report's `truth_mismatches = 0` gate rests on.
    #[test]
    fn ground_truth_matches_scmp_fds_exactly() {
        let params = GenParams { programs: 64, seed: 7, ..GenParams::default() };
        let corpus = generate_with_threads(&params, 2).expect("generation succeeds");
        let spec = canvas_easl::builtin::cmp();
        let certifier = Certifier::from_spec(spec.clone()).expect("cmp derives");
        let mut families = std::collections::BTreeSet::new();
        for p in &corpus {
            families.insert(p.family);
            let program = Program::parse(&p.source, &spec).expect("generated source parses");
            let report = certifier.certify_program(&program, Engine::ScmpFds).expect("certifies");
            let mut got = report.lines();
            got.sort_unstable();
            assert_eq!(got, p.expected, "{} ({}):\n{}", p.name, p.family, p.source);
        }
        assert_eq!(families.len(), 4, "64 programs cover all four families");
    }

    #[test]
    fn violation_rate_extremes_are_respected() {
        let none = GenParams { programs: 24, seed: 3, violation_rate: 0.0, ..Default::default() };
        for p in generate_with_threads(&none, 1).expect("generation succeeds") {
            assert!(p.expected.is_empty(), "{} should be clean", p.name);
        }
        let all = GenParams { programs: 24, seed: 3, violation_rate: 1.0, ..Default::default() };
        let generated = generate_with_threads(&all, 1).expect("generation succeeds");
        assert!(
            generated.iter().all(|p| !p.expected.is_empty()),
            "rate 1.0 means every program violates"
        );
    }
}
