//! Fleet-scale corpus certification.
//!
//! The paper certifies one client at a time; certifying a *component
//! release* means certifying every client in a corpus — thousands of
//! programs, repeatedly, as the component's spec and the clients evolve.
//! This crate provides the three pieces that turn the single-program
//! certifier into a corpus-scale tool:
//!
//! * [`gen`] — a deterministic, seed-parameterized synthetic corpus
//!   generator (families of mini-Java CMP clients with known ground
//!   truth, byte-identical across runs and thread counts);
//! * [`driver`] — a sharded, work-stealing certification driver with
//!   per-shard failure isolation (a dead worker loses only its in-flight
//!   program) and per-shard certificate caches merged losslessly at the
//!   end, optionally fanning out to `canvas serve --listen` backends;
//! * [`report`] — the aggregated fleet report: verdicts, ground-truth
//!   mismatches, cache/merge traffic, per-shard latency histograms, as a
//!   table and as the stable `canvas-bench-fleet/1` JSON document.
//!
//! # Example
//!
//! ```
//! use canvas_fleet::gen::{generate_with_threads, GenParams};
//! use canvas_fleet::driver::{run_fleet, FleetConfig};
//! use canvas_fleet::manifest::FleetItem;
//!
//! let params = GenParams { programs: 8, seed: 42, ..GenParams::default() };
//! let corpus = generate_with_threads(&params, 1)?;
//! let items: Vec<FleetItem> = corpus
//!     .iter()
//!     .map(|p| FleetItem {
//!         name: p.name.clone(),
//!         source: p.source.clone(),
//!         expected: Some(p.expected.clone()),
//!     })
//!     .collect();
//! let cfg = FleetConfig::local(
//!     canvas_easl::builtin::cmp(),
//!     "cmp",
//!     canvas_core::Engine::ScmpFds,
//!     2,
//! );
//! let report = run_fleet(&items, &cfg)?;
//! assert_eq!(report.programs, 8);
//! assert_eq!(report.truth_mismatches, 0);
//! # Ok::<(), canvas_core::CanvasError>(())
//! ```

// the panic-free frontier: code reachable from external input must
// return typed errors, never panic (test code is exempt)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod driver;
pub mod gen;
pub mod manifest;
pub mod report;

pub use driver::{exit_code, run_fleet, FleetConfig};
pub use gen::{generate, generate_with_threads, GenParams, GeneratedProgram};
pub use manifest::{load_corpus, write_corpus, FleetItem, Manifest};
pub use report::{FleetCacheTraffic, FleetReport, LatencyHist, ShardRow};

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_core::Engine;
    use canvas_incr::fingerprint::fingerprint_source;

    fn items_of(corpus: &[GeneratedProgram]) -> Vec<FleetItem> {
        corpus
            .iter()
            .map(|p| FleetItem {
                name: p.name.clone(),
                source: p.source.clone(),
                expected: Some(p.expected.clone()),
            })
            .collect()
    }

    fn cmp_config(shards: usize) -> FleetConfig {
        FleetConfig::local(canvas_easl::builtin::cmp(), "cmp", Engine::ScmpFds, shards)
    }

    /// Satellite: same seed + params ⇒ byte-identical program set and the
    /// same manifest digest, regardless of run or generator thread count.
    #[test]
    fn generator_is_deterministic_across_runs_and_thread_counts() {
        let params = GenParams { programs: 40, seed: 99, ..GenParams::default() };
        let base = generate_with_threads(&params, 1).expect("generation succeeds");
        let base_manifest = Manifest::from_programs(&params, &base);
        for threads in [1usize, 2, 4, 7] {
            let again = generate_with_threads(&params, threads).expect("generation succeeds");
            assert_eq!(again.len(), base.len());
            for (a, b) in base.iter().zip(&again) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.source, b.source, "{} differs at {threads} threads", a.name);
                assert_eq!(fingerprint_source(&a.source), fingerprint_source(&b.source));
                assert_eq!(a.expected, b.expected);
            }
            let manifest = Manifest::from_programs(&params, &again);
            assert_eq!(manifest.digest, base_manifest.digest, "digest at {threads} threads");
        }
    }

    /// The driver's deterministic section is schedule-independent: every
    /// shard count yields the same verdict counts and corpus digest, and
    /// ground truth holds corpus-wide.
    #[test]
    fn fleet_run_is_deterministic_across_shard_counts() {
        let params = GenParams { programs: 24, seed: 5, ..GenParams::default() };
        let corpus = generate_with_threads(&params, 2).expect("generation succeeds");
        let items = items_of(&corpus);
        let baseline = run_fleet(&items, &cmp_config(1)).expect("fleet runs");
        assert_eq!(baseline.programs, 24);
        assert_eq!(baseline.poisoned_programs, 0);
        assert_eq!(baseline.truth_checked, 24);
        assert_eq!(baseline.truth_mismatches, 0);
        assert!(baseline.violating > 0, "default rate produces some violations");
        assert!(baseline.certified > 0, "and some certified programs");
        for shards in [2usize, 3, 8] {
            let report = run_fleet(&items, &cmp_config(shards)).expect("fleet runs");
            assert_eq!(report.certified, baseline.certified, "{shards} shards");
            assert_eq!(report.violating, baseline.violating, "{shards} shards");
            assert_eq!(report.violation_sites, baseline.violation_sites, "{shards} shards");
            assert_eq!(report.corpus_digest, baseline.corpus_digest, "{shards} shards");
            assert_eq!(report.truth_mismatches, 0, "{shards} shards");
            let processed: u64 = report.shard_rows.iter().map(|r| r.processed).sum();
            assert_eq!(processed, 24, "every program processed exactly once");
        }
    }

    /// Tentpole acceptance: a warm store answers a re-run with zero
    /// recomputed cells, and the corpus digest matches the cold run
    /// exactly.
    #[test]
    fn warm_rerun_recomputes_nothing_and_reproduces_the_digest() {
        let params = GenParams { programs: 12, seed: 21, ..GenParams::default() };
        let corpus = generate_with_threads(&params, 1).expect("generation succeeds");
        let items = items_of(&corpus);
        let dir = std::env::temp_dir().join(format!(
            "canvas-fleet-warm-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = cmp_config(3);
        cfg.cache_dir = Some(dir.clone());
        let cold = run_fleet(&items, &cfg).expect("cold run");
        assert!(cold.cache.misses > 0, "cold run solves cells");
        assert!(cold.cache.merged > 0, "cold run populates the store");
        let warm = run_fleet(&items, &cfg).expect("warm run");
        assert_eq!(warm.cache.misses, 0, "warm run recomputes nothing: {:?}", warm.cache);
        assert!(warm.cache.seeded > 0, "shard caches seeded from the store");
        assert_eq!(warm.cache.merged, 0, "nothing new to merge");
        assert_eq!(warm.corpus_digest, cold.corpus_digest, "same answers, warm or cold");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: an injected worker death poisons only its shard — its
    /// in-flight program is lost, the rest of its partition is stolen and
    /// completed by the surviving shards.
    #[test]
    fn shard_death_poisons_only_the_dead_shard() {
        let params = GenParams { programs: 16, seed: 8, ..GenParams::default() };
        let corpus = generate_with_threads(&params, 1).expect("generation succeeds");
        let items = items_of(&corpus);
        // quiet the injected panic's backtrace noise
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        canvas_faults::force(Some(canvas_faults::Fault::ShardDeath));
        let report = run_fleet(&items, &cmp_config(4));
        canvas_faults::unforce();
        std::panic::set_hook(prev);
        let report = report.expect("fleet survives a worker death");
        assert_eq!(report.dead_shards, 1, "only worker 0 dies");
        assert_eq!(report.poisoned_programs, 1, "only its in-flight program is lost");
        assert_eq!(
            report.programs - report.poisoned_programs,
            report.certified + report.violating + report.inconclusive,
            "every other program was completed by the survivors"
        );
        assert_eq!(exit_code(&report), 3, "a poisoned fleet is inconclusive");
    }
}
