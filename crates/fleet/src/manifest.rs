//! The corpus manifest: `canvas-fleet-manifest/1`.
//!
//! A corpus on disk is a directory of `.mj` clients plus one
//! `manifest.json` recording, per entry, the file's byte length, its
//! source fingerprint, its generator family, and its ground-truth
//! violation lines — and, over all entries, an order- and
//! content-sensitive corpus digest (see
//! `canvas_incr::fingerprint::fingerprint_manifest`). Loading verifies
//! every file against its recorded fingerprint, so a tampered or
//! half-written corpus fails closed instead of skewing a fleet report.

use std::path::Path;

use canvas_core::{CanvasError, ErrorKind, Stage};
use canvas_incr::fingerprint::{fingerprint_manifest, fingerprint_source, Fingerprint};
use canvas_incr::json::{obj, Json};

use crate::gen::{GenParams, GeneratedProgram};

/// The manifest format tag.
pub const MANIFEST_FORMAT: &str = "canvas-fleet-manifest/1";
/// The manifest file name inside a corpus directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One corpus entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ManifestEntry {
    /// Corpus-relative file name.
    pub name: String,
    /// Generator family (informational).
    pub family: String,
    /// Source length in bytes.
    pub bytes: u64,
    /// Fingerprint of the source text.
    pub fp: Fingerprint,
    /// Ground-truth `scmp-fds` violation lines, ascending.
    pub expected: Vec<u32>,
}

/// The corpus manifest.
#[derive(Clone, PartialEq, Debug)]
pub struct Manifest {
    /// Spec the corpus targets (generator emits CMP clients).
    pub spec: String,
    /// Generator seed.
    pub seed: u64,
    /// Generator shape parameters (echoed for reproduction).
    pub params: GenParams,
    /// Per-program entries, in generation order.
    pub entries: Vec<ManifestEntry>,
    /// `fingerprint_manifest` over `(name, source fingerprint)` pairs.
    pub digest: Fingerprint,
}

/// A corpus program as the driver consumes it.
#[derive(Clone, Debug)]
pub struct FleetItem {
    /// Display name (corpus-relative file name).
    pub name: String,
    /// The mini-Java source.
    pub source: String,
    /// Ground truth for `scmp-fds`, when the corpus records it.
    pub expected: Option<Vec<u32>>,
}

fn cache_err(message: impl Into<String>) -> CanvasError {
    CanvasError::new(Stage::Cache, ErrorKind::Parse, message)
}

impl Manifest {
    /// Builds the manifest of a freshly generated corpus.
    pub fn from_programs(params: &GenParams, programs: &[GeneratedProgram]) -> Manifest {
        let entries: Vec<ManifestEntry> = programs
            .iter()
            .map(|p| ManifestEntry {
                name: p.name.clone(),
                family: p.family.to_string(),
                bytes: p.source.len() as u64,
                fp: fingerprint_source(&p.source),
                expected: p.expected.clone(),
            })
            .collect();
        let digest = fingerprint_manifest(entries.iter().map(|e| (e.name.as_str(), e.fp)));
        Manifest { spec: "cmp".to_string(), seed: params.seed, params: *params, entries, digest }
    }

    /// Renders the manifest as its JSON document.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("format", Json::Str(MANIFEST_FORMAT.to_string())),
            ("spec", Json::Str(self.spec.clone())),
            ("seed", Json::Int(self.seed)),
            (
                "params",
                obj(vec![
                    ("programs", Json::Int(self.params.programs as u64)),
                    ("max_methods", Json::Int(self.params.max_methods as u64)),
                    ("max_loop_depth", Json::Int(self.params.max_loop_depth as u64)),
                    // the schema has no floats; the rate is stored in permille
                    (
                        "violation_permille",
                        Json::Int((self.params.violation_rate * 1000.0).round() as u64),
                    ),
                ]),
            ),
            ("digest", Json::Str(self.digest.to_string())),
            (
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            obj(vec![
                                ("name", Json::Str(e.name.clone())),
                                ("family", Json::Str(e.family.clone())),
                                ("bytes", Json::Int(e.bytes)),
                                ("fp", Json::Str(e.fp.to_string())),
                                (
                                    "expected",
                                    Json::Arr(
                                        e.expected
                                            .iter()
                                            .map(|&l| Json::Int(u64::from(l)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a manifest document and re-verifies its digest.
    ///
    /// # Errors
    ///
    /// A `cache`-stage error for an unknown format tag, a malformed
    /// document, or a digest that does not match the entries.
    pub fn from_json(json: &Json) -> Result<Manifest, CanvasError> {
        let str_of = |j: Option<&Json>, what: &str| match j {
            Some(Json::Str(s)) => Ok(s.clone()),
            _ => Err(cache_err(format!("manifest: missing or non-string {what}"))),
        };
        let int_of = |j: Option<&Json>, what: &str| match j {
            Some(Json::Int(n)) => Ok(*n),
            _ => Err(cache_err(format!("manifest: missing or non-integer {what}"))),
        };
        let format = str_of(json.get("format"), "format")?;
        if format != MANIFEST_FORMAT {
            return Err(cache_err(format!(
                "manifest: format {format:?} is not {MANIFEST_FORMAT:?}"
            )));
        }
        let spec = str_of(json.get("spec"), "spec")?;
        let seed = int_of(json.get("seed"), "seed")?;
        let params_json =
            json.get("params").ok_or_else(|| cache_err("manifest: missing params"))?;
        let params = GenParams {
            programs: int_of(params_json.get("programs"), "params.programs")? as usize,
            seed,
            max_methods: int_of(params_json.get("max_methods"), "params.max_methods")? as usize,
            max_loop_depth: int_of(params_json.get("max_loop_depth"), "params.max_loop_depth")?
                as usize,
            violation_rate: int_of(
                params_json.get("violation_permille"),
                "params.violation_permille",
            )? as f64
                / 1000.0,
        };
        let digest = Fingerprint::parse(&str_of(json.get("digest"), "digest")?)
            .ok_or_else(|| cache_err("manifest: malformed digest"))?;
        let Some(Json::Arr(raw_entries)) = json.get("entries") else {
            return Err(cache_err("manifest: missing entries array"));
        };
        let mut entries = Vec::with_capacity(raw_entries.len());
        for e in raw_entries {
            let fp = Fingerprint::parse(&str_of(e.get("fp"), "entry fp")?)
                .ok_or_else(|| cache_err("manifest: malformed entry fp"))?;
            let mut expected = Vec::new();
            if let Some(Json::Arr(lines)) = e.get("expected") {
                for l in lines {
                    match l {
                        Json::Int(n) => expected.push(*n as u32),
                        _ => return Err(cache_err("manifest: non-integer expected line")),
                    }
                }
            }
            entries.push(ManifestEntry {
                name: str_of(e.get("name"), "entry name")?,
                family: str_of(e.get("family"), "entry family")?,
                bytes: int_of(e.get("bytes"), "entry bytes")?,
                fp,
                expected,
            });
        }
        let recomputed = fingerprint_manifest(entries.iter().map(|e| (e.name.as_str(), e.fp)));
        if recomputed != digest {
            return Err(cache_err(format!(
                "manifest: digest {digest} does not match entries (recomputed {recomputed})"
            )));
        }
        Ok(Manifest { spec, seed, params, entries, digest })
    }
}

/// Writes a corpus directory: every program file plus the manifest.
/// Refuses an existing `dir` unless `force` (a fleet run must never
/// silently clobber a corpus someone else is certifying).
///
/// # Errors
///
/// A `cache`-stage error when `dir` exists without `force`, or on I/O.
pub fn write_corpus(
    dir: &Path,
    manifest: &Manifest,
    programs: &[GeneratedProgram],
    force: bool,
) -> Result<(), CanvasError> {
    if dir.exists() && !force {
        return Err(CanvasError::new(
            Stage::Cache,
            ErrorKind::Io,
            format!("output directory {} exists; pass --force to overwrite", dir.display()),
        ));
    }
    std::fs::create_dir_all(dir)
        .map_err(|e| CanvasError::io(Stage::Cache, &dir.display().to_string(), &e))?;
    for p in programs {
        let path = dir.join(&p.name);
        std::fs::write(&path, &p.source)
            .map_err(|e| CanvasError::io(Stage::Cache, &path.display().to_string(), &e))?;
    }
    let path = dir.join(MANIFEST_FILE);
    std::fs::write(&path, manifest.to_json().render())
        .map_err(|e| CanvasError::io(Stage::Cache, &path.display().to_string(), &e))?;
    Ok(())
}

/// Loads a corpus directory, verifying every file against its manifest
/// fingerprint.
///
/// # Errors
///
/// A `cache`-stage error for a missing/malformed manifest, a missing
/// program file, or a file whose content no longer matches its recorded
/// fingerprint.
pub fn load_corpus(dir: &Path) -> Result<(Manifest, Vec<FleetItem>), CanvasError> {
    let path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CanvasError::io(Stage::Cache, &path.display().to_string(), &e))?;
    let json = Json::parse(&text)
        .map_err(|e| cache_err(format!("{}: not valid JSON: {e}", path.display())))?;
    let manifest = Manifest::from_json(&json)?;
    let mut items = Vec::with_capacity(manifest.entries.len());
    for entry in &manifest.entries {
        let file = dir.join(&entry.name);
        let source = std::fs::read_to_string(&file)
            .map_err(|e| CanvasError::io(Stage::Cache, &file.display().to_string(), &e))?;
        let fp = fingerprint_source(&source);
        if fp != entry.fp {
            return Err(cache_err(format!(
                "{}: content fingerprint {fp} does not match manifest ({})",
                file.display(),
                entry.fp
            )));
        }
        items.push(FleetItem {
            name: entry.name.clone(),
            source,
            expected: Some(entry.expected.clone()),
        });
    }
    Ok((manifest, items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_with_threads;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "canvas-fleet-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn manifest_round_trips_and_verifies() {
        let params = GenParams { programs: 6, seed: 11, ..Default::default() };
        let programs = generate_with_threads(&params, 1).expect("generation succeeds");
        let manifest = Manifest::from_programs(&params, &programs);
        let back = Manifest::from_json(&manifest.to_json()).expect("round trip");
        assert_eq!(back, manifest);

        let dir = tmpdir("roundtrip");
        write_corpus(&dir, &manifest, &programs, false).expect("write");
        // refuses to clobber without force
        assert!(write_corpus(&dir, &manifest, &programs, false).is_err());
        write_corpus(&dir, &manifest, &programs, true).expect("force overwrites");
        let (loaded, items) = load_corpus(&dir).expect("load");
        assert_eq!(loaded.digest, manifest.digest);
        assert_eq!(items.len(), programs.len());
        assert_eq!(items[0].source, programs[0].source);

        // tampering with a program file fails closed
        std::fs::write(dir.join(&programs[0].name), "class P { }\n").expect("tamper");
        assert!(load_corpus(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
