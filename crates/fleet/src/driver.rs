//! The sharded, work-stealing corpus certification driver.
//!
//! The corpus manifest is partitioned into `shards` contiguous ranges,
//! one worker thread per shard. Each shard owns an atomic claim cursor;
//! a worker first drains its own partition and then *steals* from the
//! other shards' cursors, so a slow or dead shard's remaining work is
//! redistributed automatically. Claiming is a single `fetch_add`, which
//! makes every program processed exactly once (a claimed index is either
//! completed, poisoned, or — if the claimant dies — lost with the dead
//! worker, which is the failure-isolation contract: a worker death loses
//! only its in-flight program).
//!
//! Each shard runs its own in-memory certificate cache, optionally
//! seeded from a warm on-disk store; at the end the shard caches are
//! merged losslessly (content-addressed, order-independent — see
//! `CertCache::merge_from`) back into the store. With remote backends
//! configured, shards instead speak the `canvas serve` NDJSON protocol
//! over TCP and caching happens server-side.

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use canvas_core::{CanvasError, Certifier, Engine, Verdict};
use canvas_easl::Spec;
use canvas_faults::Fault;
use canvas_incr::fingerprint::{Fingerprint, Hasher64};
use canvas_incr::json::{obj, Json};
use canvas_incr::store::CertCache;
use canvas_incr::{IncrementalCertifier, RunCacheStats};
use canvas_minijava::Program;
use canvas_telemetry::Counter;

use crate::manifest::FleetItem;
use crate::report::{FleetCacheTraffic, FleetReport, LatencyHist, ShardRow};

static FLEET_PROGRAMS: Counter = Counter::new("fleet.programs");
static FLEET_VIOLATING: Counter = Counter::new("fleet.programs_violating");
static FLEET_STEALS: Counter = Counter::non_deterministic("fleet.steals");
static FLEET_POISONED: Counter = Counter::non_deterministic("fleet.poisoned_programs");
static FLEET_DEAD_SHARDS: Counter = Counter::non_deterministic("fleet.dead_shards");
static FLEET_MERGED: Counter = Counter::non_deterministic("fleet.cache_merge_entries");

/// How one fleet run is configured.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Worker/partition/cache count (clamped to `[1, programs]`).
    pub shards: usize,
    /// Engine every program is certified with.
    pub engine: Engine,
    /// The loaded spec (local mode derives one certifier from it).
    pub spec: Spec,
    /// The spec's name, as remote backends expect it (e.g. `cmp`).
    pub spec_name: String,
    /// Warm certificate store directory: seeded from at startup, merged
    /// into and persisted at the end.
    pub cache_dir: Option<PathBuf>,
    /// `canvas serve --listen` backends (`host:port`); when non-empty the
    /// fleet certifies remotely instead of in-process.
    pub backends: Vec<String>,
    /// The corpus manifest digest, echoed into the report.
    pub manifest_digest: Option<Fingerprint>,
}

impl FleetConfig {
    /// A local-mode config with `shards` workers.
    pub fn local(spec: Spec, spec_name: &str, engine: Engine, shards: usize) -> FleetConfig {
        FleetConfig {
            shards,
            engine,
            spec,
            spec_name: spec_name.to_string(),
            cache_dir: None,
            backends: Vec::new(),
            manifest_digest: None,
        }
    }
}

/// One violation site, as the digest and truth check see it.
#[derive(Clone, Debug)]
struct Site {
    method: String,
    line: u32,
    col: u32,
    what: String,
}

/// What happened to one program.
#[derive(Clone, Debug)]
enum Outcome {
    /// Complete run: empty sites = certified.
    Done { sites: Vec<Site>, inconclusive: Option<String>, truth_ok: Option<bool> },
    /// The program's certification panicked or errored (contained).
    Poisoned { message: String },
}

/// Per-shard shared state (written by whichever worker processes the
/// shard's programs, read once at aggregation).
#[derive(Default)]
struct ShardState {
    processed: AtomicU64,
    stolen: AtomicU64,
    poisoned: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    delta_seeded: AtomicU64,
    dead: AtomicBool,
    hist: Mutex<LatencyHist>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Claims the next unprocessed index: own partition first, then steal
/// from the other shards in ring order. Returns `(index, stolen)`.
fn claim(cursors: &[AtomicUsize], ends: &[usize], me: usize) -> Option<(usize, bool)> {
    let n = cursors.len();
    for k in 0..n {
        let shard = (me + k) % n;
        let idx = cursors[shard].fetch_add(1, Ordering::SeqCst);
        if idx < ends[shard] {
            return Some((idx, k != 0));
        }
    }
    None
}

/// Certifies `item` in-process, classifying every failure as a contained
/// per-program outcome.
fn process_local(
    inc: &IncrementalCertifier,
    item: &FleetItem,
    engine: Engine,
) -> (Outcome, RunCacheStats) {
    let program = match Program::parse(&item.source, inc.certifier().spec()) {
        Ok(p) => p,
        Err(e) => {
            return (
                Outcome::Poisoned { message: format!("frontend: {e}") },
                RunCacheStats::default(),
            )
        }
    };
    match inc.certify_program_cached_with_stats(&program, engine) {
        Ok((report, stats)) => {
            let sites: Vec<Site> = report
                .violations
                .iter()
                .map(|v| Site {
                    method: v.method.clone(),
                    line: v.line,
                    col: v.col,
                    what: v.what.clone(),
                })
                .collect();
            let inconclusive = match &report.verdict {
                Verdict::Inconclusive { reason } => Some(reason.clone()),
                Verdict::Complete => None,
            };
            let truth_ok = truth_check(item, engine, inconclusive.is_some(), &sites);
            (Outcome::Done { sites, inconclusive, truth_ok }, stats)
        }
        Err(e) => {
            (Outcome::Poisoned { message: format!("certify: {e}") }, RunCacheStats::default())
        }
    }
}

/// Compares reported violation lines against the manifest ground truth
/// (only meaningful for the engine the generator recorded truth for).
fn truth_check(
    item: &FleetItem,
    engine: Engine,
    inconclusive: bool,
    sites: &[Site],
) -> Option<bool> {
    let expected = item.expected.as_ref()?;
    if engine != Engine::ScmpFds || inconclusive {
        return None;
    }
    let mut got: Vec<u32> = sites.iter().map(|s| s.line).collect();
    got.sort_unstable();
    let mut want = expected.clone();
    want.sort_unstable();
    Some(got == want)
}

/// Certifies `item` over a `canvas serve` connection.
fn process_remote(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    item: &FleetItem,
    idx: usize,
    spec_name: &str,
    engine: Engine,
) -> (Outcome, RunCacheStats) {
    let request = obj(vec![
        ("id", Json::Int(idx as u64)),
        ("cmd", Json::Str("certify".to_string())),
        ("source", Json::Str(item.source.clone())),
        ("spec", Json::Str(spec_name.to_string())),
        ("engine", Json::Str(engine.to_string())),
    ]);
    let mut line = request.render_compact();
    line.push('\n');
    if let Err(e) = stream.write_all(line.as_bytes()) {
        return (
            Outcome::Poisoned { message: format!("backend write: {e}") },
            RunCacheStats::default(),
        );
    }
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) => {
            return (
                Outcome::Poisoned { message: "backend closed the connection".to_string() },
                RunCacheStats::default(),
            )
        }
        Ok(_) => {}
        Err(e) => {
            return (
                Outcome::Poisoned { message: format!("backend read: {e}") },
                RunCacheStats::default(),
            )
        }
    }
    let json = match Json::parse(response.trim_end()) {
        Ok(j) => j,
        Err(e) => {
            return (
                Outcome::Poisoned { message: format!("backend response: {e}") },
                RunCacheStats::default(),
            )
        }
    };
    if json.get("ok") != Some(&Json::Bool(true)) {
        let message = match json.get("error") {
            Some(Json::Str(s)) => format!("backend error: {s}"),
            _ => "backend error".to_string(),
        };
        return (Outcome::Poisoned { message }, RunCacheStats::default());
    }
    let mut sites = Vec::new();
    if let Some(Json::Arr(vs)) = json.get("violations") {
        for v in vs {
            let str_of = |k: &str| match v.get(k) {
                Some(Json::Str(s)) => s.clone(),
                _ => String::new(),
            };
            let int_of = |k: &str| match v.get(k) {
                Some(Json::Int(n)) => *n as u32,
                _ => 0,
            };
            sites.push(Site {
                method: str_of("method"),
                line: int_of("line"),
                col: int_of("col"),
                what: str_of("what"),
            });
        }
    }
    let inconclusive = match json.get("verdict") {
        Some(Json::Str(v)) if v == "inconclusive" => Some(match json.get("reason") {
            Some(Json::Str(r)) => r.clone(),
            _ => "inconclusive".to_string(),
        }),
        _ => None,
    };
    let mut stats = RunCacheStats::default();
    if let Some(cache) = json.get("cache") {
        let int_of = |k: &str| match cache.get(k) {
            Some(Json::Int(n)) => *n,
            _ => 0,
        };
        stats.hits = int_of("hits");
        stats.misses = int_of("misses");
        stats.delta_seeded = int_of("delta_seeded");
    }
    let truth_ok = truth_check(item, engine, inconclusive.is_some(), &sites);
    (Outcome::Done { sites, inconclusive, truth_ok }, stats)
}

/// Runs the fleet: partitions `items` across shards, certifies every
/// program exactly once (modulo worker death), merges the shard caches,
/// and aggregates the report.
///
/// # Errors
///
/// Derivation failure (the spec itself is bad), or a cache-store I/O
/// error at persist time. Per-program and per-worker failures never
/// surface as errors — they are contained and counted in the report.
pub fn run_fleet(items: &[FleetItem], cfg: &FleetConfig) -> Result<FleetReport, CanvasError> {
    let started = Instant::now();
    let n = items.len();
    let shards = cfg.shards.clamp(1, n.max(1));
    let remote = !cfg.backends.is_empty();

    // contiguous partitions with per-shard claim cursors
    let starts: Vec<usize> = (0..shards).map(|s| s * n / shards).collect();
    let ends: Vec<usize> = (0..shards).map(|s| (s + 1) * n / shards).collect();
    let cursors: Vec<AtomicUsize> = starts.iter().map(|&s| AtomicUsize::new(s)).collect();

    // one certifier derivation, cloned per worker (local mode)
    let certifier = if remote { None } else { Some(Certifier::from_spec(cfg.spec.clone())?) };

    // warm store: seed every shard cache from it, merge back at the end
    let store = cfg.cache_dir.as_ref().map(|dir| CertCache::open(dir));
    let shard_caches: Vec<Arc<CertCache>> =
        (0..shards).map(|_| Arc::new(CertCache::in_memory())).collect();
    let mut seeded = 0u64;
    if let Some(store) = &store {
        for cache in &shard_caches {
            seeded += cache.merge_from(store).merged;
        }
    }

    let slots: Vec<Mutex<Option<Outcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let states: Vec<ShardState> = (0..shards).map(|_| ShardState::default()).collect();

    std::thread::scope(|scope| {
        for w in 0..shards {
            let cursors = &cursors;
            let ends = &ends;
            let slots = &slots;
            let states = &states;
            let shard_caches = &shard_caches;
            let certifier = certifier.clone();
            scope.spawn(move || {
                let state = &states[w];
                let worker = catch_unwind(AssertUnwindSafe(|| {
                    // local-mode incremental certifier over this shard's cache
                    let inc = certifier
                        .map(|c| IncrementalCertifier::shared(c, Arc::clone(&shard_caches[w])));
                    // remote-mode connection (a dead backend poisons this
                    // shard; the other shards steal its partition)
                    let mut conn = if remote {
                        let backend = &cfg.backends[w % cfg.backends.len()];
                        let stream = TcpStream::connect(backend)
                            .unwrap_or_else(|e| panic!("backend {backend} unreachable: {e}"));
                        let reader = BufReader::new(stream.try_clone().unwrap_or_else(|e| {
                            panic!("backend {backend}: cannot clone stream: {e}")
                        }));
                        Some((stream, reader))
                    } else {
                        None
                    };
                    let mut completed = 0u64;
                    while let Some((idx, stolen)) = claim(cursors, ends, w) {
                        // injected fault: this worker dies between programs;
                        // the claimed index is its lost in-flight program
                        if w == 0 && completed >= 1 && canvas_faults::active(Fault::ShardDeath) {
                            panic!(
                                "injected fault shard-death: fleet worker 0 died mid-corpus \
                                 (in-flight: {})",
                                items[idx].name
                            );
                        }
                        let t0 = Instant::now();
                        let contained =
                            catch_unwind(AssertUnwindSafe(|| match (&inc, &mut conn) {
                                (Some(inc), _) => process_local(inc, &items[idx], cfg.engine),
                                (None, Some((stream, reader))) => process_remote(
                                    stream,
                                    reader,
                                    &items[idx],
                                    idx,
                                    &cfg.spec_name,
                                    cfg.engine,
                                ),
                                (None, None) => unreachable!("remote mode always has a connection"),
                            }));
                        let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        lock(&state.hist).record(ns);
                        let outcome = match contained {
                            Ok((outcome, stats)) => {
                                state.hits.fetch_add(stats.hits, Ordering::Relaxed);
                                state.misses.fetch_add(stats.misses, Ordering::Relaxed);
                                state.delta_seeded.fetch_add(stats.delta_seeded, Ordering::Relaxed);
                                outcome
                            }
                            Err(payload) => Outcome::Poisoned { message: panic_message(payload) },
                        };
                        if matches!(outcome, Outcome::Poisoned { .. }) {
                            state.poisoned.fetch_add(1, Ordering::Relaxed);
                        }
                        *lock(&slots[idx]) = Some(outcome);
                        state.processed.fetch_add(1, Ordering::Relaxed);
                        if stolen {
                            state.stolen.fetch_add(1, Ordering::Relaxed);
                        }
                        completed += 1;
                    }
                }));
                if worker.is_err() {
                    state.dead.store(true, Ordering::SeqCst);
                }
            });
        }
    });

    // merge the shard caches losslessly into the (possibly disk-backed)
    // final store, then persist it
    let merge_started = Instant::now();
    let mut cache = FleetCacheTraffic { seeded, ..FleetCacheTraffic::default() };
    if !remote {
        let merged_store = store.unwrap_or_else(CertCache::in_memory);
        for shard_cache in &shard_caches {
            let stats = merged_store.merge_from(shard_cache);
            cache.merged += stats.merged;
            cache.duplicates += stats.duplicates;
            cache.conflicts += stats.conflicts;
        }
        FLEET_MERGED.add(cache.merged);
        if cfg.cache_dir.is_some() {
            merged_store.persist()?;
        }
    }
    let merge_wall = merge_started.elapsed();

    // aggregate: verdict counts and the index-ordered outcome digest are
    // schedule-independent; everything per-shard is measured
    let mut report = FleetReport {
        engine: cfg.engine.to_string(),
        spec: cfg.spec_name.clone(),
        mode: if remote { "serve".to_string() } else { "local".to_string() },
        shards_requested: shards,
        programs: n,
        certified: 0,
        violating: 0,
        violation_sites: 0,
        inconclusive: 0,
        poisoned_programs: 0,
        dead_shards: 0,
        truth_checked: 0,
        truth_mismatches: 0,
        corpus_digest: Fingerprint(0),
        manifest_digest: cfg.manifest_digest,
        cache,
        steals: 0,
        shard_rows: Vec::new(),
        wall: std::time::Duration::default(),
        merge_wall,
    };
    let mut h = Hasher64::new();
    for (item, slot) in items.iter().zip(&slots) {
        h.write_str(&item.name);
        match lock(slot).as_ref() {
            Some(Outcome::Done { sites, inconclusive, truth_ok }) => {
                match inconclusive {
                    Some(reason) => {
                        report.inconclusive += 1;
                        h.write_u8(2);
                        h.write_str(reason);
                    }
                    None if sites.is_empty() => {
                        report.certified += 1;
                        h.write_u8(0);
                    }
                    None => {
                        report.violating += 1;
                        h.write_u8(1);
                    }
                }
                report.violation_sites += sites.len();
                h.write_usize(sites.len());
                for s in sites {
                    h.write_str(&s.method);
                    h.write_u32(s.line);
                    h.write_u32(s.col);
                    h.write_str(&s.what);
                }
                if let Some(ok) = truth_ok {
                    report.truth_checked += 1;
                    if !ok {
                        report.truth_mismatches += 1;
                    }
                }
            }
            Some(Outcome::Poisoned { message }) => {
                canvas_telemetry::events::warn(
                    "fleet.poisoned",
                    format!("{}: {message}", item.name),
                );
                report.poisoned_programs += 1;
                h.write_u8(3);
            }
            None => {
                // lost with a dead worker (its in-flight program)
                report.poisoned_programs += 1;
                h.write_u8(4);
            }
        }
    }
    report.corpus_digest = h.finish();

    for (s, state) in states.iter().enumerate() {
        let dead = state.dead.load(Ordering::SeqCst);
        if dead {
            report.dead_shards += 1;
        }
        report.steals += state.stolen.load(Ordering::Relaxed);
        report.cache.hits += state.hits.load(Ordering::Relaxed);
        report.cache.misses += state.misses.load(Ordering::Relaxed);
        report.cache.delta_seeded += state.delta_seeded.load(Ordering::Relaxed);
        report.shard_rows.push(ShardRow {
            shard: s,
            processed: state.processed.load(Ordering::Relaxed),
            stolen: state.stolen.load(Ordering::Relaxed),
            poisoned_programs: state.poisoned.load(Ordering::Relaxed),
            dead,
            hits: state.hits.load(Ordering::Relaxed),
            misses: state.misses.load(Ordering::Relaxed),
            delta_seeded: state.delta_seeded.load(Ordering::Relaxed),
            latency: lock(&state.hist).clone(),
        });
    }

    FLEET_PROGRAMS.add((report.programs - report.poisoned_programs) as u64);
    FLEET_VIOLATING.add(report.violating as u64);
    FLEET_STEALS.add(report.steals);
    FLEET_POISONED.add(report.poisoned_programs as u64);
    FLEET_DEAD_SHARDS.add(report.dead_shards as u64);
    report.wall = started.elapsed();
    Ok(report)
}

/// Maps a fleet report to the CLI exit code contract: `3` when anything
/// was inconclusive or poisoned (the fleet cannot vouch for the corpus),
/// `1` when violations were found, `0` when everything certified.
pub fn exit_code(report: &FleetReport) -> u8 {
    if report.inconclusive > 0 || report.poisoned_programs > 0 || report.dead_shards > 0 {
        3
    } else if report.violating > 0 {
        1
    } else {
        0
    }
}
