//! The aggregated fleet report: table rendering and the
//! `canvas-bench-fleet/1` JSON document.
//!
//! The document is split the same way the evaluation metrics are: a
//! `deterministic` section (verdict counts, ground-truth mismatches, the
//! corpus outcome digest — schedule-independent, baseline-gateable) and a
//! `measured` section (wall clock, cache traffic, steals, per-shard
//! latency — all schedule- or machine-dependent, recorded but never
//! gated). Work stealing moves *where* a program runs, never *what* its
//! report says, which is what keeps the first section deterministic.

use std::time::Duration;

use canvas_incr::fingerprint::Fingerprint;
use canvas_incr::json::{obj, Json};

/// The `canvas fleet` JSON format tag.
pub const REPORT_FORMAT: &str = "canvas-bench-fleet/1";

/// A small log2-bucketed latency histogram (nanosecond samples).
///
/// The telemetry crate's histograms are process-global statics; per-shard
/// latency needs a value type, so the fleet keeps its own.
#[derive(Clone, Debug)]
pub struct LatencyHist {
    buckets: [u64; 64],
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHist {
    fn default() -> LatencyHist {
        LatencyHist { buckets: [0; 64], count: 0, total_ns: 0, max_ns: 0 }
    }
}

impl LatencyHist {
    /// Records one nanosecond sample.
    pub fn record(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros() as usize).min(63);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound (ns) of the bucket containing quantile `q` in `[0,1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
            }
        }
        self.max_ns
    }

    /// Mean sample (ns).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Largest sample (ns).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }
}

/// Per-shard outcome row.
#[derive(Clone, Debug, Default)]
pub struct ShardRow {
    /// Shard index.
    pub shard: usize,
    /// Programs this shard's worker completed (own partition + stolen).
    pub processed: u64,
    /// Of those, programs stolen from other shards' partitions.
    pub stolen: u64,
    /// Programs that panicked inside this worker (contained per-program).
    pub poisoned_programs: u64,
    /// Whether the worker itself died (shard poisoned; its in-flight
    /// program is lost, the rest of its partition was stolen).
    pub dead: bool,
    /// Certificate-cache hits by this worker.
    pub hits: u64,
    /// Certificate-cache misses (fresh solves) by this worker.
    pub misses: u64,
    /// Misses seeded from a stale entry's fixpoint (delta re-solve).
    pub delta_seeded: u64,
    /// Per-program latency distribution.
    pub latency: LatencyHist,
}

/// Certificate-cache traffic over the whole fleet run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetCacheTraffic {
    /// Cells answered from a shard cache.
    pub hits: u64,
    /// Cells solved fresh.
    pub misses: u64,
    /// Misses seeded by within-method delta re-solve.
    pub delta_seeded: u64,
    /// Entries copied from the warm store into shard caches at startup.
    pub seeded: u64,
    /// New entries merged from shard caches into the final store.
    pub merged: u64,
    /// Entries already present (byte-identical) at merge time.
    pub duplicates: u64,
    /// Same-key different-bytes merge collisions (receiver kept).
    pub conflicts: u64,
}

/// The aggregated result of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Engine name (e.g. `scmp-fds`).
    pub engine: String,
    /// Spec name (e.g. `cmp`).
    pub spec: String,
    /// `local` or `serve` (remote backends).
    pub mode: String,
    /// Shard count.
    pub shards_requested: usize,
    /// Corpus size.
    pub programs: usize,
    /// Programs certified conformant.
    pub certified: usize,
    /// Programs with at least one potential violation.
    pub violating: usize,
    /// Total violation sites.
    pub violation_sites: usize,
    /// Programs with an inconclusive verdict.
    pub inconclusive: usize,
    /// Programs whose worker panicked, errored, or died mid-flight.
    pub poisoned_programs: usize,
    /// Workers that died (shards poisoned).
    pub dead_shards: usize,
    /// Programs checked against manifest ground truth.
    pub truth_checked: usize,
    /// Ground-truth disagreements (must be 0 for `scmp-fds` corpora).
    pub truth_mismatches: usize,
    /// Index-ordered digest over per-program outcomes
    /// (schedule-independent; a warm re-run must reproduce it exactly).
    pub corpus_digest: Fingerprint,
    /// The corpus manifest digest, when the run had a manifest.
    pub manifest_digest: Option<Fingerprint>,
    /// Aggregated cache traffic.
    pub cache: FleetCacheTraffic,
    /// Work-stealing moves.
    pub steals: u64,
    /// Per-shard rows.
    pub shard_rows: Vec<ShardRow>,
    /// End-to-end wall clock.
    pub wall: Duration,
    /// Of which, final cache merge.
    pub merge_wall: Duration,
}

impl FleetReport {
    /// Renders the human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet: {} programs, engine {}, spec {}, {} shards ({})\n",
            self.programs, self.engine, self.spec, self.shards_requested, self.mode
        ));
        out.push_str(&format!(
            "  verdicts: {} certified, {} violating ({} sites), {} inconclusive\n",
            self.certified, self.violating, self.violation_sites, self.inconclusive
        ));
        out.push_str(&format!(
            "  failures: {} poisoned programs, {} dead shards, {} truth mismatches ({} checked)\n",
            self.poisoned_programs, self.dead_shards, self.truth_mismatches, self.truth_checked
        ));
        out.push_str(&format!("  corpus digest: {}", self.corpus_digest));
        if let Some(m) = self.manifest_digest {
            out.push_str(&format!("  (manifest {m})"));
        }
        out.push('\n');
        out.push_str(&format!(
            "  cache: {} hits, {} misses, {} delta-seeded, {} seeded, merged {} (+{} duplicate, {} conflicts)\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.delta_seeded,
            self.cache.seeded,
            self.cache.merged,
            self.cache.duplicates,
            self.cache.conflicts
        ));
        out.push_str(&format!(
            "  wall: {} ms (merge {} ms), {} steals\n",
            self.wall.as_millis(),
            self.merge_wall.as_millis(),
            self.steals
        ));
        out.push_str(
            "  shard  programs  stolen  poisoned  hits  misses  p50us  p99us  maxus  dead\n",
        );
        for r in &self.shard_rows {
            out.push_str(&format!(
                "  {:>5}  {:>8}  {:>6}  {:>8}  {:>4}  {:>6}  {:>5}  {:>5}  {:>5}  {}\n",
                r.shard,
                r.processed,
                r.stolen,
                r.poisoned_programs,
                r.hits,
                r.misses,
                r.latency.quantile_ns(0.50) / 1_000,
                r.latency.quantile_ns(0.99) / 1_000,
                r.latency.max_ns() / 1_000,
                if r.dead { "yes" } else { "no" }
            ));
        }
        out
    }

    /// Renders the `canvas-bench-fleet/1` JSON document.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("format", Json::Str(REPORT_FORMAT.to_string())),
            (
                "deterministic",
                obj(vec![
                    ("programs", Json::Int(self.programs as u64)),
                    ("certified", Json::Int(self.certified as u64)),
                    ("violating", Json::Int(self.violating as u64)),
                    ("violation_sites", Json::Int(self.violation_sites as u64)),
                    ("inconclusive", Json::Int(self.inconclusive as u64)),
                    ("truth_checked", Json::Int(self.truth_checked as u64)),
                    ("truth_mismatches", Json::Int(self.truth_mismatches as u64)),
                    ("corpus_digest", Json::Str(self.corpus_digest.to_string())),
                    (
                        "manifest_digest",
                        match self.manifest_digest {
                            Some(m) => Json::Str(m.to_string()),
                            None => Json::Null,
                        },
                    ),
                    ("engine", Json::Str(self.engine.clone())),
                    ("spec", Json::Str(self.spec.clone())),
                ]),
            ),
            (
                "measured",
                obj(vec![
                    ("mode", Json::Str(self.mode.clone())),
                    ("shards", Json::Int(self.shards_requested as u64)),
                    ("wall_ms", Json::Int(self.wall.as_millis() as u64)),
                    ("merge_ms", Json::Int(self.merge_wall.as_millis() as u64)),
                    ("steals", Json::Int(self.steals)),
                    ("poisoned_programs", Json::Int(self.poisoned_programs as u64)),
                    ("dead_shards", Json::Int(self.dead_shards as u64)),
                    (
                        "cache",
                        obj(vec![
                            ("hits", Json::Int(self.cache.hits)),
                            ("misses", Json::Int(self.cache.misses)),
                            ("delta_seeded", Json::Int(self.cache.delta_seeded)),
                            ("seeded", Json::Int(self.cache.seeded)),
                            ("merged", Json::Int(self.cache.merged)),
                            ("duplicates", Json::Int(self.cache.duplicates)),
                            ("conflicts", Json::Int(self.cache.conflicts)),
                        ]),
                    ),
                    (
                        "shard_rows",
                        Json::Arr(
                            self.shard_rows
                                .iter()
                                .map(|r| {
                                    obj(vec![
                                        ("shard", Json::Int(r.shard as u64)),
                                        ("processed", Json::Int(r.processed)),
                                        ("stolen", Json::Int(r.stolen)),
                                        ("poisoned_programs", Json::Int(r.poisoned_programs)),
                                        ("dead", Json::Bool(r.dead)),
                                        ("hits", Json::Int(r.hits)),
                                        ("misses", Json::Int(r.misses)),
                                        ("delta_seeded", Json::Int(r.delta_seeded)),
                                        ("p50_us", Json::Int(r.latency.quantile_ns(0.50) / 1_000)),
                                        ("p90_us", Json::Int(r.latency.quantile_ns(0.90) / 1_000)),
                                        ("p99_us", Json::Int(r.latency.quantile_ns(0.99) / 1_000)),
                                        ("max_us", Json::Int(r.latency.max_ns() / 1_000)),
                                        ("mean_us", Json::Int(r.latency.mean_ns() / 1_000)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_hist_quantiles_are_monotone() {
        let mut h = LatencyHist::default();
        for ns in [100u64, 200, 400, 800, 1_600, 3_200, 640_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 7);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        assert!(p50 <= p99, "{p50} <= {p99}");
        assert!(h.max_ns() >= 640_000);
        assert!(h.mean_ns() > 0);
    }

    #[test]
    fn empty_hist_is_all_zero() {
        let h = LatencyHist::default();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0);
    }
}
