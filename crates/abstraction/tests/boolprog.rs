//! Transform tests that exercise real derived abstractions.
//!
//! These live as integration tests (not unit tests in `boolprog.rs`) because
//! they drive the transform with `canvas_wp::derive_abstraction`, and
//! `canvas-wp` is a dev-dependency that itself depends on this crate: in a
//! unit-test build that links a *second* copy of the library whose `Derived`
//! is a distinct type. Integration tests share the one real lib artifact
//! with the dev-dependency, so the types line up.

use canvas_abstraction::{transform_method, EntryAssumption, FamilyId, Operand, Rhs};
use canvas_easl::builtin;
use canvas_minijava::Program;
use canvas_wp::{derive_abstraction, Derived};

fn setup(src: &str) -> (Program, canvas_easl::Spec, Derived) {
    let spec = builtin::cmp();
    let program = Program::parse(src, &spec).unwrap();
    let derived = derive_abstraction(&spec).unwrap();
    (program, spec, derived)
}

#[test]
fn fig3_transform_shape() {
    let (program, spec, derived) = setup(
        r#"
        class Main {
            static void main() {
                Set v = new Set();
                Iterator i1 = v.iterator();
                Iterator i2 = v.iterator();
                Iterator i3 = i1;
                i1.next();
                i1.remove();
                if (c()) { i2.next(); }
                if (c()) { i3.next(); }
                v.add("x");
                if (c()) { i1.next(); }
            }
            static boolean c() { return true; }
        }
        "#,
    );
    let main = program.method_named("Main.main").unwrap();
    let bp = transform_method(&program, main, &spec, &derived, EntryAssumption::Clean);
    // variables: v (Set), i1,i2,i3 (Iterator)
    // stale: 3, iterof: 3, mutx: 3*3-3diag=6, same: 1 set var → same(v,v) const
    let stale_count = bp.preds.iter().filter(|p| p.family.index() == 0).count();
    let iterof_count = bp.preds.iter().filter(|p| p.family.index() == 1).count();
    let mutx_count = bp.preds.iter().filter(|p| p.family.index() == 2).count();
    let same_count = bp.preds.iter().filter(|p| p.family.index() == 3).count();
    assert_eq!(stale_count, 3);
    assert_eq!(iterof_count, 3);
    assert_eq!(mutx_count, 6);
    assert_eq!(same_count, 0); // same(v,v) folded to constant 1
                               // i1.next, i1.remove, i2.next, i3.next, i1.next = 5 checks
    assert_eq!(bp.checks.len(), 5);
    // clean entry: nothing unknown
    assert!(bp.entry_unknown.is_empty());
}

#[test]
fn unknown_entry_for_params_and_statics() {
    let (program, spec, derived) = setup(
        r#"
        class A {
            static Set shared;
            void m(Iterator it) { it.next(); }
        }
        "#,
    );
    let m = program.method_named("A.m").unwrap();
    let bp = transform_method(&program, m, &spec, &derived, EntryAssumption::Unknown);
    assert!(!bp.entry_unknown.is_empty());
    // stale(it) must be among the unknowns
    let it = program.vars().iter().find(|v| v.name == "it").unwrap().id;
    let stale_it = bp.pred_index(FamilyId::from_index(0), &[it]).unwrap();
    assert!(bp.entry_unknown.contains(&stale_it));
}

#[test]
fn client_call_havocs_mutable_only() {
    let (program, spec, derived) = setup(
        r#"
        class Main {
            static void main() {
                Set v = new Set();
                Iterator i = v.iterator();
                help();
                i.next();
            }
            static void help() { }
        }
        "#,
    );
    let main = program.method_named("Main.main").unwrap();
    let bp = transform_method(&program, main, &spec, &derived, EntryAssumption::Clean);
    let call_edge = bp
        .edges
        .iter()
        .find(|e| e.assigns.iter().any(|(_, r)| matches!(r, Rhs::Havoc)))
        .expect("client call havocs something");
    // havocked predicates must all be stale (mutable dep), not iterof/mutx
    for (p, r) in &call_edge.assigns {
        if matches!(r, Rhs::Havoc) {
            assert_eq!(bp.preds[*p].family.index(), 0, "only stale instances havoc");
        }
    }
}

#[test]
fn pred_names_render() {
    let (program, spec, derived) = setup(
        "class Main { static void main() { Set v = new Set(); Iterator i = v.iterator(); i.next(); } }",
    );
    let main = program.method_named("Main.main").unwrap();
    let bp = transform_method(&program, main, &spec, &derived, EntryAssumption::Clean);
    let names: Vec<String> =
        (0..bp.preds.len()).map(|k| bp.pred_name(k, &program, &derived)).collect();
    assert!(names.iter().any(|n| n == "stale{i}"), "{names:?}");
    assert!(names.iter().any(|n| n == "iterof{i,v}"), "{names:?}");
}

#[test]
fn diagonal_instances_fold_to_constants() {
    let (program, spec, derived) = setup(
        "class Main { static void main() { Set v = new Set(); Set w = v; Iterator i = v.iterator(); } }",
    );
    let main = program.main_method().unwrap();
    let bp = transform_method(&program, main, &spec, &derived, EntryAssumption::Clean);
    // same(v,v) and mutx over a single iterator never become variables
    for p in &bp.preds {
        let fam = derived.family(p.family);
        if fam.name() == "same" {
            assert_ne!(p.args[0], p.args[1], "diagonal same must fold");
        }
        if fam.name() == "mutx" {
            assert_ne!(p.args[0], p.args[1], "diagonal mutx must fold");
        }
    }
    // the folded constants are recorded
    assert!(bp.consts.values().any(|&v| v), "same(v,v)=1 recorded");
    assert!(bp.consts.values().any(|&v| !v), "mutx(i,i)=0 recorded");
}

#[test]
fn load_havocs_only_the_loaded_var() {
    let (program, spec, derived) = setup(
        r#"
class Box { Iterator it; Box() { } }
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        Box b = new Box();
        b.it = i;
        Iterator j = b.it;
    }
}
"#,
    );
    let main = program.main_method().unwrap();
    let bp = transform_method(&program, main, &spec, &derived, EntryAssumption::Clean);
    // find the Load edge (bool edges are index-aligned with IR edges);
    // the lowering loads into a temporary, then copies into `j`
    let (load_idx, loaded) = main
        .cfg
        .edges()
        .iter()
        .enumerate()
        .find_map(|(k, e)| match e.instr {
            canvas_minijava::Instr::Load { dst, .. } => Some((k, dst)),
            _ => None,
        })
        .expect("program loads b.it");
    let load_edge = &bp.edges[load_idx];
    assert!(!load_edge.assigns.is_empty(), "load must havoc something");
    for (dst, rhs) in &load_edge.assigns {
        assert!(matches!(rhs, Rhs::Havoc));
        assert!(
            bp.preds[*dst].args.contains(&loaded),
            "load havoc must only hit instances involving the loaded var"
        );
    }
}

#[test]
fn opaque_argument_instances_resolve_to_zero() {
    // passing a null/opaque where a component value could flow: the
    // check instance over the mismatched var resolves to constant 0
    let spec = canvas_easl::builtin::imp();
    let derived = derive_abstraction(&spec).unwrap();
    let program = Program::parse(
        r#"
class Main {
    static void main() {
        Factory f = new Factory();
        Widget a = f.makeWidget();
        f.combine(a, a);
    }
}
"#,
        &spec,
    )
    .unwrap();
    let main = program.main_method().unwrap();
    let bp = transform_method(&program, main, &spec, &derived, EntryAssumption::Clean);
    assert_eq!(bp.checks.len(), 1);
    // with both args the same valid widget, no operand can fire
    let res_ok = bp.checks[0].preds.iter().all(|op| !matches!(op, Operand::Const(true)));
    assert!(res_ok);
}

#[test]
fn dump_is_readable() {
    let (program, spec, derived) = setup(
        "class Main { static void main() { Set s = new Set(); Iterator i = s.iterator(); s.add(\"x\"); i.next(); } }",
    );
    let main = program.main_method().unwrap();
    let bp = transform_method(&program, main, &spec, &derived, EntryAssumption::Clean);
    let text = bp.dump(&program, &derived);
    assert!(text.contains("stale{i} := "), "{text}");
    assert!(text.contains("requires !("), "{text}");
}
