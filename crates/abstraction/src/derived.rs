//! The data model of a derived abstraction (paper Fig. 4 and Fig. 5).
//!
//! These types describe *what* a derivation produced — instrumentation
//! predicate families and per-statement-form update rules — without any of
//! the machinery that produces them. The weakest-precondition derivation
//! procedure lives in `canvas-wp` and constructs [`Derived`] values; this
//! crate (and the trusted certificate checker built on it) only consumes
//! them. Keeping the data model here means the checker's trusted base
//! includes the *meaning* of an abstraction but not the (much larger,
//! unproven-in-code) derivation engine.

use std::fmt;

use canvas_logic::{Formula, PredId, TypeName, Var};

/// Identifier of a [`Family`] in [`Derived::families`].
///
/// Family ids are dense [`PredId`]s: `id.index()` is the family's position
/// in discovery order, which downstream crates exploit for `Vec`-indexed
/// tables instead of hash maps.
pub type FamilyId = PredId;

/// An instrumentation-predicate family (paper Fig. 4): a named formula with
/// typed canonical parameters. Client analysis instantiates a family once
/// per type-correct tuple of client variables (or fields, for HCMP).
#[derive(Clone, PartialEq, Debug)]
pub struct Family {
    id: FamilyId,
    name: String,
    params: Vec<Var>,
    formula: Formula,
    mutable_dep: bool,
    origin: String,
}

impl Family {
    /// Assembles a family. Called by the derivation procedure; client-side
    /// code only reads families back out of a [`Derived`].
    pub fn new(
        id: FamilyId,
        name: String,
        params: Vec<Var>,
        formula: Formula,
        mutable_dep: bool,
        origin: String,
    ) -> Family {
        Family { id, name, params, formula, mutable_dep, origin }
    }

    /// The family's id.
    pub fn id(&self) -> FamilyId {
        self.id
    }

    /// A readable name (`stale`, `iterof`, … for the classic shapes,
    /// `q<N>` otherwise).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The canonical typed parameters.
    pub fn params(&self) -> &[Var] {
        &self.params
    }

    /// The defining formula over [`Family::params`].
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// Whether the defining formula reads any *mutable* component field.
    ///
    /// Instances of families with `mutable_dep() == false` cannot be changed
    /// by component calls on unrelated receivers or by unknown client code
    /// (their value depends only on construction-time structure), which the
    /// interprocedural analysis exploits.
    pub fn mutable_dep(&self) -> bool {
        self.mutable_dep
    }

    /// Where the family came from (diagnostics).
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// The formula with parameters renamed to `args` (parallel to params).
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != params.len()`.
    pub fn instantiate(&self, args: &[Var]) -> Formula {
        assert_eq!(args.len(), self.params.len(), "family arity mismatch");
        self.formula.rename_vars(&|v| match self.params.iter().position(|p| p == v) {
            Some(k) => args[k],
            None => *v,
        })
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (k, p) in self.params.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", p.name(), p.ty())?;
        }
        write!(f, ") ≡ {}", self.formula)
    }
}

/// A client-visible statement form the abstraction provides rules for.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum StmtForm {
    /// `x = new C(args)`.
    New {
        /// The allocated component class.
        class: TypeName,
    },
    /// `[x =] y.m(args)`.
    Call {
        /// The receiver's component class.
        class: TypeName,
        /// The method name.
        method: String,
    },
    /// `x = y` between two component references of the same type.
    Copy {
        /// The copied reference type.
        ty: TypeName,
    },
}

impl fmt::Display for StmtForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmtForm::New { class } => write!(f, "x = new {class}(...)"),
            StmtForm::Call { class, method } => write!(f, "[x =] y<{class}>.{method}(...)"),
            StmtForm::Copy { ty } => write!(f, "x = y  ({ty})"),
        }
    }
}

/// A variable slot in an update rule, resolved against a concrete client
/// statement at instantiation time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RuleVar {
    /// The call receiver.
    Recv,
    /// The k-th argument.
    Arg(usize),
    /// The client variable the result is assigned to.
    Lhs,
    /// The k-th parameter of the *target* family, universally quantified
    /// over client variables of its type (the paper's `∀z ∈ V` macros).
    Univ(usize),
}

/// One disjunct of an update rule's right-hand side.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuleRhs {
    /// A constant.
    Const(bool),
    /// An instance of a family over rule variables.
    Inst(FamilyId, Vec<RuleVar>),
    /// Unknown value — emitted only by *conservative* derivation (§4.5)
    /// when the family budget is exhausted: the target may become anything.
    Unknown,
}

/// An update rule `target := rhs₁ ∨ … ∨ rhsₖ` (empty rhs means `:= 0`),
/// applying to instances of the target family whose `Lhs` positions hold the
/// statement's assigned variable. Families/positions without a rule are
/// unchanged by the statement.
#[derive(Clone, PartialEq, Debug)]
pub struct UpdateRule {
    /// Target family.
    pub family: FamilyId,
    /// Target argument slots (`Lhs` and `Univ` only).
    pub target_args: Vec<RuleVar>,
    /// Right-hand-side disjuncts (values read in the pre-state).
    pub rhs: Vec<RuleRhs>,
}

/// A precondition check at a statement form: the call may violate its
/// `requires` iff some disjunct may be true.
pub type CheckInst = RuleRhs;

/// The abstraction of one statement form: its precondition checks and its
/// predicate update rules (the machine form of the paper's Fig. 5 rows).
#[derive(Clone, PartialEq, Debug)]
pub struct StmtAbstraction {
    /// The statement form.
    pub form: StmtForm,
    /// Disjuncts of the negated `requires` (empty = no precondition).
    pub checks: Vec<CheckInst>,
    /// Update rules.
    pub rules: Vec<UpdateRule>,
}

impl StmtAbstraction {
    /// The rule whose target binds exactly `bound` parameter positions to
    /// the statement's assigned variable.
    pub fn rule_for(&self, family: FamilyId, bound: &[usize]) -> Option<&UpdateRule> {
        self.rules.iter().find(|r| {
            r.family == family
                && r.target_args.iter().enumerate().all(|(k, a)| match a {
                    RuleVar::Lhs => bound.contains(&k),
                    _ => !bound.contains(&k),
                })
        })
    }
}

/// Convergence statistics of the derivation (experiment E1/E8).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DerivationStats {
    /// Number of WP computations performed.
    pub wp_count: usize,
    /// Number of candidate disjuncts examined.
    pub candidates: usize,
    /// Number of family-equivalence checks.
    pub equiv_checks: usize,
    /// `families_discovered[r]` = number of families known after processing
    /// the r-th worklist item (round 0 = after seeding from `requires`).
    pub families_discovered: Vec<usize>,
    /// Number of update disjuncts degraded to [`RuleRhs::Unknown`] because
    /// the family budget was exhausted (0 for converging derivations).
    pub unknown_rhs: usize,
}

/// The result of abstraction derivation for one specification.
#[derive(Clone, PartialEq, Debug)]
pub struct Derived {
    spec_name: String,
    families: Vec<Family>,
    stmts: Vec<StmtAbstraction>,
    stats: DerivationStats,
}

impl Derived {
    /// Assembles a derived abstraction. Called by the derivation procedure.
    pub fn new(
        spec_name: String,
        families: Vec<Family>,
        stmts: Vec<StmtAbstraction>,
        stats: DerivationStats,
    ) -> Derived {
        Derived { spec_name, families, stmts, stats }
    }

    /// The specification this abstraction was derived from.
    pub fn spec_name(&self) -> &str {
        &self.spec_name
    }

    /// All derived families, in discovery order.
    pub fn families(&self) -> &[Family] {
        &self.families
    }

    /// A family by id.
    pub fn family(&self, id: FamilyId) -> &Family {
        &self.families[id.index()]
    }

    /// All statement abstractions.
    pub fn stmt_abstractions(&self) -> &[StmtAbstraction] {
        &self.stmts
    }

    /// The abstraction for `[x =] y.m(args)`.
    pub fn for_call(&self, class: &TypeName, method: &str) -> Option<&StmtAbstraction> {
        self.stmts.iter().find(
            |s| matches!(&s.form, StmtForm::Call { class: c, method: m } if c == class && m == method),
        )
    }

    /// The abstraction for `x = new C(args)`.
    pub fn for_new(&self, class: &TypeName) -> Option<&StmtAbstraction> {
        self.stmts.iter().find(|s| matches!(&s.form, StmtForm::New { class: c } if c == class))
    }

    /// The abstraction for `x = y` at type `ty`.
    pub fn for_copy(&self, ty: &TypeName) -> Option<&StmtAbstraction> {
        self.stmts.iter().find(|s| matches!(&s.form, StmtForm::Copy { ty: t } if t == ty))
    }

    /// Derivation statistics.
    pub fn stats(&self) -> &DerivationStats {
        &self.stats
    }
}
