//! The proof-carrying certificate format (Abstraction-Carrying Code).
//!
//! A [`Certificate`] packages the *fixpoint solution* of a whole-program
//! certification run — per `(method, entry)` cell, the claimed per-node
//! may-be-1 sets (FDS) or valuation sets (relational) — together with the
//! claimed verdict and binding digests for the client source, the
//! specification, and the derived abstraction. An untrusted certification
//! service can ship the certificate to a client, and the client revalidates
//! it with the small `canvas-check` crate by a *single-pass* replay: verify
//! the claimed solution is a post-fixpoint of the trusted boolean-program
//! transfer functions and that the claimed violation set is exactly the one
//! the solution implies. No engine code is trusted; correctness comes only
//! from passing the checker.
//!
//! The serialized form is line-oriented, versioned ([`CERT_FORMAT`]) and
//! byte-stable: serializing the same certificate twice produces identical
//! bytes, and the trailing `sha` line carries an FNV-1a digest of every
//! preceding byte, so any accidental corruption (a flipped bit, a truncated
//! tail) is rejected before replay even starts. Deliberate tampering that
//! recomputes the digest is caught by the replay itself.

use std::fmt;

use crate::boolprog::{BoolProgram, EntryAssumption, Operand, Rhs};
use crate::derived::Derived;

/// Header line of the serialized certificate; bump on breaking changes.
pub const CERT_FORMAT: &str = "canvas-cert/1";

/// 64-bit FNV-1a, the digest used throughout the certificate format.
///
/// Independent of (but identical in output to) the fingerprint hasher in
/// `canvas-incr`: the checker must not depend on engine-side crates, so the
/// forty lines are duplicated rather than shared.
#[derive(Clone, Debug)]
pub struct Digest(u64);

impl Digest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    /// A fresh hasher.
    pub fn new() -> Digest {
        Digest(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a length-prefixed string (prefix-collision safe).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Digest {
        Digest::new()
    }
}

/// FNV-1a of a string's raw bytes (used to bind the exact client source).
pub fn digest_str(s: &str) -> u64 {
    let mut d = Digest::new();
    d.write(s.as_bytes());
    d.finish()
}

/// A digest of the derived abstraction's observable content (families and
/// statement abstractions). Binds a certificate to the exact abstraction the
/// checker will replay with; the `Debug` form is deterministic.
pub fn derived_digest(d: &Derived) -> u64 {
    let mut h = Digest::new();
    h.write_str(d.spec_name());
    h.write_str(&format!("{:?}", d.families()));
    h.write_str(&format!("{:?}", d.stmt_abstractions()));
    h.finish()
}

/// A digest of a boolean program's replay-relevant structure: predicate
/// count, nodes, entry seeds, edges with their parallel assignments, and
/// check sites. Emitter and checker both transform the client and compare
/// digests, so any skew between their transforms is reported as a shape
/// mismatch instead of a baffling post-fixpoint failure.
pub fn bp_digest(bp: &BoolProgram) -> u64 {
    let mut h = Digest::new();
    h.write_usize(bp.preds.len());
    h.write_usize(bp.node_count);
    h.write_usize(bp.entry);
    h.write_usize(bp.entry_unknown.len());
    for &k in &bp.entry_unknown {
        h.write_usize(k);
    }
    h.write_usize(bp.edges.len());
    for e in &bp.edges {
        h.write_usize(e.from);
        h.write_usize(e.to);
        h.write_usize(e.assigns.len());
        for (dst, rhs) in &e.assigns {
            h.write_usize(*dst);
            match rhs {
                Rhs::Havoc => h.write_u64(u64::MAX),
                Rhs::Disj(ops) => {
                    h.write_usize(ops.len());
                    for op in ops {
                        match op {
                            Operand::Const(c) => {
                                h.write(&[0]);
                                h.write(&[u8::from(*c)]);
                            }
                            Operand::Var(v) => {
                                h.write(&[1]);
                                h.write_usize(*v);
                            }
                        }
                    }
                }
            }
        }
    }
    h.write_usize(bp.checks.len());
    for c in &bp.checks {
        h.write_usize(c.node);
        h.write_u64(u64::from(c.site.span.line));
        h.write_u64(u64::from(c.site.span.col));
        h.write_str(&c.site.what);
        h.write_usize(c.preds.len());
        for op in &c.preds {
            match op {
                Operand::Const(c) => {
                    h.write(&[0]);
                    h.write(&[u8::from(*c)]);
                }
                Operand::Var(v) => {
                    h.write(&[1]);
                    h.write_usize(*v);
                }
            }
        }
    }
    h.finish()
}

/// The fixpoint-solution payload of one certificate cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CellSolution {
    /// Per-node may-be-1 predicate sets (the FDS engine's solution):
    /// `nodes[i]` lists the indices that may be 1 at node `i`, sorted.
    MayOne {
        /// One sorted index list per node.
        nodes: Vec<Vec<u32>>,
    },
    /// Per-node sets of full valuations (the relational engine's solution):
    /// each valuation is a sorted index list; valuation lists are sorted.
    Relational {
        /// One sorted valuation-set per node.
        nodes: Vec<Vec<Vec<u32>>>,
    },
    /// The engine produced no replayable solution (TVLA/heap/interproc
    /// engines, or an inconclusive run). Such a certificate records the
    /// verdict but cannot be independently revalidated.
    Unavailable {
        /// Why.
        reason: String,
    },
}

/// One `(method, entry-assumption)` cell of a whole-program certificate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CertCell {
    /// Qualified method name, e.g. `Main.main`.
    pub method: String,
    /// The entry assumption the cell was analysed under.
    pub entry: EntryAssumption,
    /// Claimed predicate-instance count (the solution's bit width).
    pub preds: u32,
    /// Digest of the boolean program the solution is a fixpoint of.
    pub bp_digest: u64,
    /// The claimed solution.
    pub solution: CellSolution,
}

/// One claimed potential violation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CertViolation {
    /// Qualified method name.
    pub method: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Human-readable call description, e.g. `i.next()`.
    pub what: String,
}

/// A replayable whole-program certificate (see the module docs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// Engine name, e.g. `scmp-fds` (informational; the replay semantics is
    /// determined per cell by the solution kind).
    pub engine: String,
    /// Specification name.
    pub spec: String,
    /// Digest of the derived abstraction ([`derived_digest`]).
    pub derived: u64,
    /// Digest of the exact client source text ([`digest_str`]).
    pub source: u64,
    /// One cell per `(method, entry)` pair, `main` (clean entry) first.
    pub cells: Vec<CertCell>,
    /// The claimed violations, in normalized (sorted, deduplicated) order.
    pub violations: Vec<CertViolation>,
}

/// Why a serialized certificate was rejected before replay.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CertFormatError {
    /// Unknown or missing format header.
    Version(String),
    /// The trailing digest does not match the payload bytes.
    DigestMismatch,
    /// A malformed line (with a description).
    Malformed(String),
}

impl fmt::Display for CertFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertFormatError::Version(v) => write!(f, "unsupported certificate format {v:?}"),
            CertFormatError::DigestMismatch => {
                f.write_str("certificate digest mismatch (corrupted or truncated)")
            }
            CertFormatError::Malformed(m) => write!(f, "malformed certificate: {m}"),
        }
    }
}

impl std::error::Error for CertFormatError {}

fn entry_tag(e: EntryAssumption) -> &'static str {
    match e {
        EntryAssumption::Clean => "clean",
        EntryAssumption::Unknown => "unknown",
    }
}

fn parse_entry(s: &str) -> Option<EntryAssumption> {
    match s {
        "clean" => Some(EntryAssumption::Clean),
        "unknown" => Some(EntryAssumption::Unknown),
        _ => None,
    }
}

fn fmt_indices(out: &mut String, bits: &[u32]) {
    if bits.is_empty() {
        out.push('-');
        return;
    }
    for (k, b) in bits.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&b.to_string());
    }
}

fn parse_indices(s: &str) -> Result<Vec<u32>, CertFormatError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            t.parse::<u32>()
                .map_err(|_| CertFormatError::Malformed(format!("bad index list {s:?}")))
        })
        .collect()
}

impl Certificate {
    /// Whether every cell carries a replayable solution.
    pub fn checkable(&self) -> bool {
        !self.cells.is_empty()
            && self.cells.iter().all(|c| !matches!(c.solution, CellSolution::Unavailable { .. }))
    }

    /// Serializes to the versioned, byte-stable text form.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{CERT_FORMAT}");
        let _ = writeln!(out, "engine {}", self.engine);
        let _ = writeln!(out, "spec {}", self.spec);
        let _ = writeln!(out, "derived {:016x}", self.derived);
        let _ = writeln!(out, "source {:016x}", self.source);
        for cell in &self.cells {
            let _ = writeln!(
                out,
                "cell {} {} {:016x} {}",
                entry_tag(cell.entry),
                cell.preds,
                cell.bp_digest,
                cell.method
            );
            match &cell.solution {
                CellSolution::MayOne { nodes } => {
                    let _ = writeln!(out, "may {}", nodes.len());
                    for bits in nodes {
                        out.push_str("  ");
                        fmt_indices(&mut out, bits);
                        out.push('\n');
                    }
                }
                CellSolution::Relational { nodes } => {
                    let _ = writeln!(out, "rel {}", nodes.len());
                    for vals in nodes {
                        out.push_str("  ");
                        if vals.is_empty() {
                            out.push('.');
                        }
                        for (k, v) in vals.iter().enumerate() {
                            if k > 0 {
                                out.push(' ');
                            }
                            fmt_indices(&mut out, v);
                        }
                        out.push('\n');
                    }
                }
                CellSolution::Unavailable { reason } => {
                    let _ = writeln!(out, "unavailable {reason}");
                }
            }
        }
        for v in &self.violations {
            let _ = writeln!(out, "violation {} {} {} {}", v.line, v.col, v.method, v.what);
        }
        let _ = writeln!(out, "sha {:016x}", digest_str(&out));
        out
    }

    /// Parses the text form, verifying the version header and the digest.
    ///
    /// # Errors
    ///
    /// [`CertFormatError`] on a version/digest mismatch or any malformed
    /// line — a parse failure is a *rejection*: nothing about a certificate
    /// that fails to parse may be trusted.
    pub fn parse(text: &str) -> Result<Certificate, CertFormatError> {
        let malformed = |m: &str| CertFormatError::Malformed(m.to_string());
        // split off and verify the trailing digest line first; the text must
        // end with exactly `sha <16 lowercase hex>\n` — no slack that a
        // flipped byte could hide in
        let stripped = text.strip_suffix('\n').ok_or_else(|| malformed("missing final newline"))?;
        let body_end = stripped.rfind('\n').map(|k| k + 1).unwrap_or(0);
        let (payload, sha_line) = text.split_at(body_end);
        let sha_hex = sha_line
            .strip_prefix("sha ")
            .and_then(|s| s.strip_suffix('\n'))
            .ok_or_else(|| malformed("missing digest line"))?;
        if sha_hex.len() != 16
            || !sha_hex.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        {
            return Err(malformed("bad digest line"));
        }
        let claimed = u64::from_str_radix(sha_hex, 16).map_err(|_| malformed("bad digest line"))?;
        if digest_str(payload) != claimed {
            return Err(CertFormatError::DigestMismatch);
        }

        let mut lines = payload.lines();
        match lines.next() {
            Some(v) if v == CERT_FORMAT => {}
            other => return Err(CertFormatError::Version(other.unwrap_or("").to_string())),
        }
        let mut engine = None;
        let mut spec = None;
        let mut derived = None;
        let mut source = None;
        let mut cells: Vec<CertCell> = Vec::new();
        let mut violations = Vec::new();
        let hex = |s: &str| {
            u64::from_str_radix(s, 16)
                .map_err(|_| CertFormatError::Malformed(format!("bad digest field {s:?}")))
        };
        while let Some(line) = lines.next() {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "engine" => engine = Some(rest.to_string()),
                "spec" => spec = Some(rest.to_string()),
                "derived" => derived = Some(hex(rest)?),
                "source" => source = Some(hex(rest)?),
                "cell" => {
                    let mut f = rest.splitn(4, ' ');
                    let entry = f
                        .next()
                        .and_then(parse_entry)
                        .ok_or_else(|| malformed("bad cell entry tag"))?;
                    let preds: u32 = f
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| malformed("bad cell predicate count"))?;
                    let bp = hex(f.next().ok_or_else(|| malformed("bad cell line"))?)?;
                    let method = f.next().ok_or_else(|| malformed("bad cell line"))?.to_string();
                    let sol_head =
                        lines.next().ok_or_else(|| malformed("cell without solution"))?;
                    let (kind, arg) = sol_head.split_once(' ').unwrap_or((sol_head, ""));
                    let solution = match kind {
                        "may" => {
                            let n: usize = arg.parse().map_err(|_| malformed("bad node count"))?;
                            let mut nodes = Vec::with_capacity(n);
                            for _ in 0..n {
                                let row = lines
                                    .next()
                                    .and_then(|l| l.strip_prefix("  "))
                                    .ok_or_else(|| malformed("truncated may solution"))?;
                                nodes.push(parse_indices(row)?);
                            }
                            CellSolution::MayOne { nodes }
                        }
                        "rel" => {
                            let n: usize = arg.parse().map_err(|_| malformed("bad node count"))?;
                            let mut nodes = Vec::with_capacity(n);
                            for _ in 0..n {
                                let row = lines
                                    .next()
                                    .and_then(|l| l.strip_prefix("  "))
                                    .ok_or_else(|| malformed("truncated rel solution"))?;
                                let vals = if row == "." {
                                    Vec::new()
                                } else {
                                    row.split(' ')
                                        .map(parse_indices)
                                        .collect::<Result<Vec<_>, _>>()?
                                };
                                nodes.push(vals);
                            }
                            CellSolution::Relational { nodes }
                        }
                        "unavailable" => CellSolution::Unavailable { reason: arg.to_string() },
                        other => {
                            return Err(CertFormatError::Malformed(format!(
                                "unknown solution kind {other:?}"
                            )))
                        }
                    };
                    cells.push(CertCell { method, entry, preds, bp_digest: bp, solution });
                }
                "violation" => {
                    let mut f = rest.splitn(4, ' ');
                    let line: u32 = f
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| malformed("bad violation line"))?;
                    let col: u32 = f
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| malformed("bad violation column"))?;
                    let method = f.next().ok_or_else(|| malformed("bad violation"))?.to_string();
                    let what = f.next().unwrap_or("").to_string();
                    violations.push(CertViolation { method, line, col, what });
                }
                other => return Err(CertFormatError::Malformed(format!("unknown line {other:?}"))),
            }
        }
        Ok(Certificate {
            engine: engine.ok_or_else(|| malformed("missing engine line"))?,
            spec: spec.ok_or_else(|| malformed("missing spec line"))?,
            derived: derived.ok_or_else(|| malformed("missing derived line"))?,
            source: source.ok_or_else(|| malformed("missing source line"))?,
            cells,
            violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Certificate {
        Certificate {
            engine: "scmp-fds".to_string(),
            spec: "cmp".to_string(),
            derived: 0xdead_beef,
            source: 0x1234,
            cells: vec![
                CertCell {
                    method: "Main.main".to_string(),
                    entry: EntryAssumption::Clean,
                    preds: 3,
                    bp_digest: 42,
                    solution: CellSolution::MayOne { nodes: vec![vec![], vec![0, 2], vec![1]] },
                },
                CertCell {
                    method: "Main.helper".to_string(),
                    entry: EntryAssumption::Unknown,
                    preds: 2,
                    bp_digest: 7,
                    solution: CellSolution::Relational {
                        nodes: vec![vec![vec![], vec![0, 1]], vec![]],
                    },
                },
            ],
            violations: vec![CertViolation {
                method: "Main.main".to_string(),
                line: 10,
                col: 9,
                what: "i.next()".to_string(),
            }],
        }
    }

    #[test]
    fn round_trips_byte_stable() {
        let c = sample();
        let t1 = c.to_text();
        let parsed = Certificate::parse(&t1).unwrap();
        assert_eq!(parsed, c);
        assert_eq!(parsed.to_text(), t1, "serialization must be byte-stable");
    }

    #[test]
    fn any_byte_flip_is_rejected() {
        let text = sample().to_text();
        let bytes = text.as_bytes();
        for i in 0..bytes.len() {
            let mut mutated = bytes.to_vec();
            mutated[i] ^= 0x01;
            let r = match String::from_utf8(mutated) {
                Ok(s) => Certificate::parse(&s),
                Err(_) => continue, // non-UTF-8 cannot even reach the parser
            };
            assert!(r.is_err(), "flip at byte {i} must be rejected");
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let text = sample().to_text();
        for cut in [1, text.len() / 2, text.len() - 2] {
            assert!(Certificate::parse(&text[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unavailable_cells_are_not_checkable() {
        let mut c = sample();
        assert!(c.checkable());
        c.cells[0].solution =
            CellSolution::Unavailable { reason: "engine does not emit solutions".to_string() };
        assert!(!c.checkable());
        let t = c.to_text();
        assert_eq!(Certificate::parse(&t).unwrap(), c);
    }
}
