//! Client-side instantiation of derived abstractions (paper §4.3).
//!
//! Given the [`canvas_wp::Derived`] abstraction of a component and a
//! mini-Java client, this crate produces the *transformed client program*:
//! a [`BoolProgram`] over nullary instrumentation-predicate instances (the
//! paper's Fig. 6) in which
//!
//! * every component-relevant statement became a batch of parallel boolean
//!   assignments `p := p₁ ∨ … ∨ pₖ | 0 | 1 | havoc`, instantiated from the
//!   derived method abstractions, and
//! * every `requires` became a check site: the call may violate its
//!   precondition iff one of the check predicates may be `1`.
//!
//! The boolean program is then analysed by `canvas-dataflow`'s engines.

mod boolprog;

pub use boolprog::{
    transform_method, transform_method_with, BoolEdge, BoolProgram, CheckSite, ClientCallPolicy,
    EntryAssumption, Operand, PredInstance, Rhs,
};
