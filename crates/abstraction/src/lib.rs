//! Client-side instantiation of derived abstractions (paper §4.3).
//!
//! Given the [`Derived`] abstraction of a component (data model in
//! [`derived`]; produced by the `canvas-wp` derivation engine) and a
//! mini-Java client, this crate produces the *transformed client program*:
//! a [`BoolProgram`] over nullary instrumentation-predicate instances (the
//! paper's Fig. 6) in which
//!
//! * every component-relevant statement became a batch of parallel boolean
//!   assignments `p := p₁ ∨ … ∨ pₖ | 0 | 1 | havoc`, instantiated from the
//!   derived method abstractions, and
//! * every `requires` became a check site: the call may violate its
//!   precondition iff one of the check predicates may be `1`.
//!
//! The boolean program is then analysed by `canvas-dataflow`'s engines — or
//! *replayed* by the trusted `canvas-check` certificate checker, which is why
//! both the abstraction data model and the [`certificate`] format live here:
//! this crate is the engine-free trusted base the checker builds on.

mod boolprog;
pub mod certificate;
pub mod derived;

pub use boolprog::{
    transform_method, transform_method_with, BoolEdge, BoolProgram, CheckSite, ClientCallPolicy,
    EntryAssumption, Operand, PredInstance, Rhs,
};
pub use certificate::{
    bp_digest, derived_digest, digest_str, CellSolution, CertCell, CertFormatError, CertViolation,
    Certificate, CERT_FORMAT,
};
pub use derived::{
    CheckInst, DerivationStats, Derived, Family, FamilyId, RuleRhs, RuleVar, StmtAbstraction,
    StmtForm, UpdateRule,
};
