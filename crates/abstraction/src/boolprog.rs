//! The boolean-program transform for SCMP-style certification (Fig. 6).

use std::collections::HashMap;

use crate::derived::{Derived, FamilyId, RuleRhs, RuleVar, StmtAbstraction, UpdateRule};
use canvas_easl::Spec;
use canvas_logic::{models, Formula, Var};
use canvas_minijava::{Instr, MethodId, MethodIr, Program, Site, VarId};

/// One nullary instrumentation-predicate instance: a family applied to a
/// tuple of client variables (e.g. `mutx_{i1,i2}`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PredInstance {
    /// The family.
    pub family: FamilyId,
    /// The client variables the family parameters are bound to.
    pub args: Vec<VarId>,
}

/// An operand of a boolean assignment or check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A constant.
    Const(bool),
    /// The pre-state value of a predicate instance (index into
    /// [`BoolProgram::preds`]).
    Var(usize),
}

/// The right-hand side of one parallel assignment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Rhs {
    /// Disjunction of operands (empty = constant 0).
    Disj(Vec<Operand>),
    /// Unknown value (both 0 and 1 possible) — used for effects the nullary
    /// abstraction cannot track (heap loads, unknown callees).
    Havoc,
}

/// An edge of the boolean program: all assignments read the pre-state
/// (parallel assignment), mirroring the simultaneous update semantics of the
/// derived method abstractions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BoolEdge {
    /// Source node (same numbering as the method CFG).
    pub from: usize,
    /// Target node.
    pub to: usize,
    /// Parallel assignments `pred := rhs`.
    pub assigns: Vec<(usize, Rhs)>,
}

/// A `requires` check site: evaluated in the state at `node`; the call may
/// violate its precondition iff some operand may be 1.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckSite {
    /// The node whose dataflow state the check reads (the call's pre-state).
    pub node: usize,
    /// The source location, for reporting.
    pub site: Site,
    /// Violation disjuncts.
    pub preds: Vec<Operand>,
}

/// The transformed client method (paper Fig. 6): a boolean program over
/// predicate instances.
#[derive(Clone, PartialEq, Debug)]
pub struct BoolProgram {
    /// The method this program was built from.
    pub method: MethodId,
    /// Predicate instances; indices are the boolean variable ids.
    pub preds: Vec<PredInstance>,
    /// Number of nodes (same ids as the source CFG).
    pub node_count: usize,
    /// Entry node.
    pub entry: usize,
    /// Edges with parallel assignments.
    pub edges: Vec<BoolEdge>,
    /// `requires` check sites.
    pub checks: Vec<CheckSite>,
    /// Predicates unknown at entry (instances over parameters and statics
    /// when the method is analysed out of context).
    pub entry_unknown: Vec<usize>,
    /// Instances folded to constants (e.g. `mutx(x,x) ≡ 0`, `same(v,v) ≡ 1`).
    pub consts: HashMap<(FamilyId, Vec<VarId>), bool>,
    /// Instance → boolean-variable index, the inverse of [`BoolProgram::preds`].
    pub index: HashMap<(FamilyId, Vec<VarId>), usize>,
}

impl BoolProgram {
    /// The index of an instance, if it is tracked (non-constant).
    ///
    /// O(1): resolved through the instance index built by the transform
    /// (the interprocedural engine calls this per summary fact per call
    /// edge, so it must not scan).
    pub fn pred_index(&self, family: FamilyId, args: &[VarId]) -> Option<usize> {
        self.index.get(&(family, args.to_vec())).copied()
    }

    /// A human-readable name for predicate `i`, e.g. `stale{i1}`.
    pub fn pred_name(&self, i: usize, program: &Program, derived: &Derived) -> String {
        let p = &self.preds[i];
        let args: Vec<String> = p.args.iter().map(|v| program.var(*v).name.clone()).collect();
        format!("{}{{{}}}", derived.family(p.family).name(), args.join(","))
    }
}

/// Context options for the transform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntryAssumption {
    /// Parameters and statics hold unknown component states (sound when a
    /// method is certified out of context).
    Unknown,
    /// Everything starts definite-0 (suitable for `main`: statics are null,
    /// there are no parameters).
    Clean,
}

/// How client-to-client calls are reflected in the boolean program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientCallPolicy {
    /// Conservative intraprocedural treatment: havoc every instance the
    /// callee could affect (mutable-dependent ones, statics, the result).
    Havoc,
    /// Emit no assignments for client calls; the interprocedural engine
    /// applies callee summaries itself (the boolean edges stay aligned 1:1
    /// with the method's IR edges, so the engine can intercept them).
    Defer,
}

/// Builds the boolean program for one client method.
///
/// Instances are enumerated over the method's in-scope component variables
/// (locals, params, temps, statics, return slot). Instances whose defining
/// formula is constant under repeated arguments (`mutx(x,x) ≡ 0`,
/// `same(v,v) ≡ 1`) are folded away.
pub fn transform_method(
    program: &Program,
    method: &MethodIr,
    spec: &Spec,
    derived: &Derived,
    entry: EntryAssumption,
) -> BoolProgram {
    transform_method_with(program, method, spec, derived, entry, ClientCallPolicy::Havoc)
}

/// [`transform_method`] with an explicit client-call policy.
pub fn transform_method_with(
    program: &Program,
    method: &MethodIr,
    spec: &Spec,
    derived: &Derived,
    entry: EntryAssumption,
    policy: ClientCallPolicy,
) -> BoolProgram {
    static TRANSFORMS: canvas_telemetry::Counter =
        canvas_telemetry::Counter::new("abstraction.transforms");
    static PRED_INSTANCES: canvas_telemetry::Counter =
        canvas_telemetry::Counter::new("abstraction.pred_instances");
    static TRANSFORM_TIME: canvas_telemetry::Timer =
        canvas_telemetry::Timer::new("abstraction.transform");
    let _span = TRANSFORM_TIME.span();
    let _lower_phase = canvas_telemetry::phase::LOWER.span();
    let b = Builder::new(program, method, spec, derived, entry, policy);
    let bp = b.run();
    TRANSFORMS.incr();
    PRED_INSTANCES.add(bp.preds.len() as u64);
    bp
}

struct Builder<'a> {
    program: &'a Program,
    method: &'a MethodIr,
    spec: &'a Spec,
    derived: &'a Derived,
    entry: EntryAssumption,
    policy: ClientCallPolicy,
    vars: Vec<VarId>,
    preds: Vec<PredInstance>,
    index: HashMap<(FamilyId, Vec<VarId>), usize>,
    /// constant value of folded instances
    consts: HashMap<(FamilyId, Vec<VarId>), bool>,
    /// memo of repeat-pattern constancy per family
    diag_memo: HashMap<(FamilyId, Vec<usize>), Option<bool>>,
}

impl<'a> Builder<'a> {
    fn new(
        program: &'a Program,
        method: &'a MethodIr,
        spec: &'a Spec,
        derived: &'a Derived,
        entry: EntryAssumption,
        policy: ClientCallPolicy,
    ) -> Self {
        Builder {
            program,
            method,
            spec,
            derived,
            entry,
            policy,
            vars: program.component_vars_in_scope(method.id, spec),
            preds: Vec::new(),
            index: HashMap::new(),
            consts: HashMap::new(),
            diag_memo: HashMap::new(),
        }
    }

    fn run(mut self) -> BoolProgram {
        // enumerate all type-correct instances
        let derived = self.derived;
        for fam in derived.families() {
            let fid = fam.id();
            let arity = fam.params().len();
            let mut tuple = vec![VarId(0); arity];
            self.enumerate(fid, 0, &mut tuple);
        }

        let mut edges = Vec::new();
        let mut checks = Vec::new();
        for e in self.method.cfg.edges() {
            let (assigns, check) = self.translate(&e.instr);
            if let Some(c) = check {
                checks.push(CheckSite { node: e.from.0, site: c.0, preds: c.1 });
            }
            edges.push(BoolEdge { from: e.from.0, to: e.to.0, assigns });
        }

        // entry assumptions
        let mut entry_unknown = Vec::new();
        if self.entry == EntryAssumption::Unknown {
            for (k, p) in self.preds.iter().enumerate() {
                let exposed = p.args.iter().any(|v| {
                    let var = self.program.var(*v);
                    var.owner.is_none() || matches!(var.kind, canvas_minijava::VarKind::Param(_))
                });
                if exposed {
                    entry_unknown.push(k);
                }
            }
        }

        BoolProgram {
            method: self.method.id,
            preds: self.preds,
            node_count: self.method.cfg.node_count(),
            entry: self.method.cfg.entry().0,
            edges,
            checks,
            entry_unknown,
            consts: self.consts,
            index: self.index,
        }
    }

    fn enumerate(&mut self, fid: FamilyId, k: usize, tuple: &mut Vec<VarId>) {
        let fam = self.derived.family(fid);
        if k == fam.params().len() {
            let key = (fid, tuple.clone());
            if self.index.contains_key(&key) || self.consts.contains_key(&key) {
                return;
            }
            match self.tuple_const(fid, tuple) {
                Some(c) => {
                    self.consts.insert(key, c);
                }
                None => {
                    let idx = self.preds.len();
                    self.preds.push(PredInstance { family: fid, args: tuple.clone() });
                    self.index.insert(key, idx);
                }
            }
            return;
        }
        let want_ty = *fam.params()[k].ty();
        let vars = self.vars.clone();
        for v in vars {
            if self.program.var(v).ty == want_ty {
                tuple[k] = v;
                self.enumerate(fid, k + 1, tuple);
            }
        }
    }

    /// Whether an instance with this repeat pattern folds to a constant.
    fn tuple_const(&mut self, fid: FamilyId, tuple: &[VarId]) -> Option<bool> {
        // canonical repeat pattern, e.g. (a,a) → [0,0], (a,b) → [0,1]
        let mut pattern = Vec::with_capacity(tuple.len());
        let mut seen: Vec<VarId> = Vec::new();
        for v in tuple {
            match seen.iter().position(|w| w == v) {
                Some(k) => pattern.push(k),
                None => {
                    pattern.push(seen.len());
                    seen.push(*v);
                }
            }
        }
        let key = (fid, pattern.clone());
        if let Some(c) = self.diag_memo.get(&key) {
            return *c;
        }
        let fam = self.derived.family(fid);
        // instantiate with pattern-canonical variables
        let args: Vec<Var> = fam
            .params()
            .iter()
            .zip(&pattern)
            .map(|(p, k)| Var::new(format!("c{k}"), *p.ty()))
            .collect();
        let inst = fam.instantiate(&args);
        let oracle = self.spec.oracle();
        let c = if models::equivalent(&oracle, &Formula::True, &inst, &Formula::True) {
            Some(true)
        } else if models::equivalent(&oracle, &Formula::True, &inst, &Formula::False) {
            Some(false)
        } else {
            None
        };
        self.diag_memo.insert(key, c);
        c
    }

    /// Resolves an instance to an operand (constant or variable); `None`
    /// when a referenced variable is not in scope/type-mismatched (treated
    /// as "no tracked object", i.e. 0).
    fn operand(&self, fid: FamilyId, args: &[VarId]) -> Operand {
        let key = (fid, args.to_vec());
        if let Some(&c) = self.consts.get(&key) {
            return Operand::Const(c);
        }
        match self.index.get(&key) {
            Some(&i) => Operand::Var(i),
            None => Operand::Const(false),
        }
    }

    /// Resolves a rule variable against a concrete statement instance.
    #[allow(clippy::too_many_arguments)]
    fn resolve_rule_var(
        rv: RuleVar,
        recv: Option<VarId>,
        args: &[VarId],
        lhs: Option<VarId>,
        univ: &[Option<VarId>],
    ) -> Option<VarId> {
        match rv {
            RuleVar::Recv => recv,
            RuleVar::Arg(k) => args.get(k).copied(),
            RuleVar::Lhs => lhs,
            RuleVar::Univ(k) => univ.get(k).copied().flatten(),
        }
    }

    /// Expands a statement abstraction at a concrete statement.
    fn expand(
        &self,
        sa: &StmtAbstraction,
        recv: Option<VarId>,
        args: &[VarId],
        lhs: Option<VarId>,
    ) -> Vec<(usize, Rhs)> {
        let mut out = Vec::new();
        for rule in &sa.rules {
            self.expand_rule(rule, recv, args, lhs, &mut out);
        }
        out
    }

    fn expand_rule(
        &self,
        rule: &UpdateRule,
        recv: Option<VarId>,
        args: &[VarId],
        lhs: Option<VarId>,
        out: &mut Vec<(usize, Rhs)>,
    ) {
        let fam = self.derived.family(rule.family);
        // does the rule involve Lhs? then a concrete lhs must exist
        let needs_lhs = rule.target_args.iter().any(|a| matches!(a, RuleVar::Lhs));
        if needs_lhs && lhs.is_none() {
            return;
        }
        // enumerate universal slots (skipping the statement's own lhs: those
        // tuples are served by the Lhs-bound rules)
        let arity = fam.params().len();
        let mut univ: Vec<Option<VarId>> = vec![None; arity];
        self.expand_univ(rule, 0, recv, args, lhs, &mut univ, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn expand_univ(
        &self,
        rule: &UpdateRule,
        k: usize,
        recv: Option<VarId>,
        args: &[VarId],
        lhs: Option<VarId>,
        univ: &mut Vec<Option<VarId>>,
        out: &mut Vec<(usize, Rhs)>,
    ) {
        let fam = self.derived.family(rule.family);
        if k == rule.target_args.len() {
            // resolve target tuple
            let mut tuple = Vec::with_capacity(rule.target_args.len());
            for &ta in &rule.target_args {
                match Self::resolve_rule_var(ta, recv, args, lhs, univ) {
                    Some(v) => tuple.push(v),
                    None => return,
                }
            }
            let Some(&idx) = self.index.get(&(rule.family, tuple.clone())) else {
                return; // constant or untracked instance: no assignment
            };
            // resolve rhs
            let mut ops = Vec::new();
            let mut havoc = false;
            for r in &rule.rhs {
                match r {
                    RuleRhs::Const(true) => ops.push(Operand::Const(true)),
                    RuleRhs::Const(false) => {}
                    RuleRhs::Unknown => havoc = true,
                    RuleRhs::Inst(g, rvs) => {
                        let mut iargs = Vec::with_capacity(rvs.len());
                        let mut ok = true;
                        for &rv in rvs {
                            match Self::resolve_rule_var(rv, recv, args, lhs, univ) {
                                Some(v) => iargs.push(v),
                                None => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        if ok {
                            match self.operand(*g, &iargs) {
                                Operand::Const(false) => {}
                                op => ops.push(op),
                            }
                        }
                    }
                }
            }
            out.push((idx, if havoc { Rhs::Havoc } else { Rhs::Disj(ops) }));
            return;
        }
        match rule.target_args[k] {
            RuleVar::Univ(slot) => {
                let want_ty = *fam.params()[k].ty();
                for &v in &self.vars {
                    if self.program.var(v).ty != want_ty {
                        continue;
                    }
                    if Some(v) == lhs {
                        continue; // served by the Lhs-bound rule
                    }
                    univ[slot] = Some(v);
                    self.expand_univ(rule, k + 1, recv, args, lhs, univ, out);
                }
                univ[slot] = None;
            }
            _ => self.expand_univ(rule, k + 1, recv, args, lhs, univ, out),
        }
    }

    /// Sets every instance involving `v` to the given rhs.
    fn smash_var(&self, v: VarId, rhs: &Rhs, out: &mut Vec<(usize, Rhs)>) {
        for (k, p) in self.preds.iter().enumerate() {
            if p.args.contains(&v) {
                out.push((k, rhs.clone()));
            }
        }
    }

    /// Translates one IR instruction to assignments and an optional check.
    #[allow(clippy::type_complexity)]
    fn translate(&self, instr: &Instr) -> (Vec<(usize, Rhs)>, Option<(Site, Vec<Operand>)>) {
        let mut assigns = Vec::new();
        let mut check = None;
        match instr {
            Instr::Nop => {}
            Instr::Copy { dst, src } => {
                let dty = &self.program.var(*dst).ty;
                if self.spec.is_component_type(dty) {
                    if self.program.var(*src).ty == *dty {
                        if let Some(sa) = self.derived.for_copy(dty) {
                            assigns = self.expand(sa, None, &[*src], Some(*dst));
                        }
                    } else {
                        self.smash_var(*dst, &Rhs::Havoc, &mut assigns);
                    }
                }
            }
            Instr::Nullify { dst } => {
                if self.spec.is_component_type(&self.program.var(*dst).ty) {
                    self.smash_var(*dst, &Rhs::Disj(vec![]), &mut assigns);
                }
            }
            Instr::New { dst, ty, args, .. } => {
                if self.spec.is_component_type(ty) {
                    if let Some(sa) = self.derived.for_new(ty) {
                        assigns = self.expand(sa, None, args, Some(*dst));
                        if !sa.checks.is_empty() {
                            // constructors with requires: check in pre-state
                            let ops = self.resolve_checks(&sa.checks, None, args, Some(*dst));
                            if let Instr::New { at, .. } = instr {
                                check = Some((at.clone(), ops));
                            }
                        }
                    }
                }
            }
            Instr::CallComponent { dst, recv, method, args, known, at } => {
                if !known {
                    return (assigns, None);
                }
                let rty = self.program.var(*recv).ty;
                if let Some(sa) = self.derived.for_call(&rty, method) {
                    assigns = self.expand(sa, Some(*recv), args, *dst);
                    if !sa.checks.is_empty() {
                        let ops = self.resolve_checks(&sa.checks, Some(*recv), args, *dst);
                        check = Some((at.clone(), ops));
                    }
                }
            }
            Instr::CallClient { dst, .. } => {
                if self.policy == ClientCallPolicy::Defer {
                    return (assigns, None);
                }
                // intraprocedural conservatism: the callee may mutate any
                // component state it can reach (through statics or passed
                // references) — havoc every mutable-dependent instance, every
                // instance involving a static, and everything involving the
                // returned value.
                for (k, p) in self.preds.iter().enumerate() {
                    let fam = self.derived.family(p.family);
                    let involves_static =
                        p.args.iter().any(|v| self.program.var(*v).owner.is_none());
                    let involves_ret = dst.is_some_and(|d| p.args.contains(&d));
                    if fam.mutable_dep() || involves_static || involves_ret {
                        assigns.push((k, Rhs::Havoc));
                    }
                }
            }
            Instr::Load { dst, .. } => {
                // a component reference read from the heap: untracked by the
                // nullary abstraction
                if self.spec.is_component_type(&self.program.var(*dst).ty) {
                    self.smash_var(*dst, &Rhs::Havoc, &mut assigns);
                }
            }
            Instr::Store { .. } => {
                // storing a reference does not change any instance over
                // variables; heap-held aliases are handled by HCMP
            }
        }
        (assigns, check)
    }

    fn resolve_checks(
        &self,
        checks: &[RuleRhs],
        recv: Option<VarId>,
        args: &[VarId],
        lhs: Option<VarId>,
    ) -> Vec<Operand> {
        let mut ops = Vec::new();
        for c in checks {
            match c {
                RuleRhs::Const(true) | RuleRhs::Unknown => ops.push(Operand::Const(true)),
                RuleRhs::Const(false) => {}
                RuleRhs::Inst(g, rvs) => {
                    let mut iargs = Vec::with_capacity(rvs.len());
                    let mut ok = true;
                    for &rv in rvs {
                        match Self::resolve_rule_var(rv, recv, args, lhs, &[]) {
                            Some(v) => iargs.push(v),
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        match self.operand(*g, &iargs) {
                            Operand::Const(false) => {}
                            op => ops.push(op),
                        }
                    }
                }
            }
        }
        ops
    }
}

// Tests that drive the transform with real derived abstractions live in
// `tests/boolprog.rs`: they need `canvas_wp::derive_abstraction`, and the
// dev-dep cycle (wp depends on this crate) would link a second copy of the
// library into a unit-test build, making its `Derived` a distinct type.

impl BoolProgram {
    /// Renders the transformed client (the paper's Fig. 6) as text: every
    /// edge's parallel assignments plus the `requires` check sites.
    pub fn dump(&self, program: &Program, derived: &Derived) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let name = |k: usize| self.pred_name(k, program, derived);
        let _ = writeln!(
            out,
            "boolean program for {} ({} predicate instances)",
            program.method(self.method).qualified_name(),
            self.preds.len()
        );
        for c in &self.checks {
            let ops: Vec<String> = c
                .preds
                .iter()
                .map(|op| match op {
                    Operand::Const(b) => b.to_string(),
                    Operand::Var(v) => name(*v),
                })
                .collect();
            let _ = writeln!(
                out,
                "  check @ node {} ({}): requires !({})",
                c.node,
                c.site,
                ops.join(" || ")
            );
        }
        for e in &self.edges {
            if e.assigns.is_empty() {
                continue;
            }
            let stmts: Vec<String> = e
                .assigns
                .iter()
                .map(|(dst, rhs)| {
                    let rhs = match rhs {
                        Rhs::Havoc => "havoc".to_string(),
                        Rhs::Disj(ops) if ops.is_empty() => "0".to_string(),
                        Rhs::Disj(ops) => ops
                            .iter()
                            .map(|op| match op {
                                Operand::Const(b) => if *b { "1" } else { "0" }.to_string(),
                                Operand::Var(v) => name(*v),
                            })
                            .collect::<Vec<_>>()
                            .join(" | "),
                    };
                    format!("{} := {}", name(*dst), rhs)
                })
                .collect();
            let _ = writeln!(out, "  {:>3} -> {:<3} {}", e.from, e.to, stmts.join("; "));
        }
        out
    }
}
