//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the `rand` 0.8 API the suite generators use: a
//! seedable deterministic PRNG (`rngs::StdRng`), `Rng::gen_range` over
//! integer ranges, and `Rng::gen_bool`. The generator is xoshiro256++
//! seeded via SplitMix64 — statistically fine for workload generation and
//! fully deterministic per seed, which is all the suite needs. The stream
//! differs from upstream `StdRng` (ChaCha12), so generated clients differ
//! textually from runs against the real crate, but every generator carries
//! its own ground truth so results stay valid.

pub mod rngs {
    /// Deterministic xoshiro256++ generator mirroring `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy {
    fn sample(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Debiased multiply-shift rejection (Lemire).
                let zone = u128::from(u64::MAX) + 1;
                let cap = zone - zone % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v < cap {
                        return (lo as i128 + (v % span) as i128) as Self;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32, i64, i32, u8, i8, u16, i16);

/// The slice of `rand::Rng` the workspace uses.
pub trait Rng {
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 random bits → uniform f64 in [0, 1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
