//! Lowering from the mini-Java AST to the CFG-based IR.
//!
//! Lowering performs name resolution (locals ≺ instance fields ≺ statics ≺
//! class names), flattens nested expressions through typed temporaries, and
//! builds one [`Cfg`] per method with instructions on edges. Branch
//! conditions contribute only their component-relevant effects; the branch
//! itself becomes two `Nop` edges (a nondeterministic choice), mirroring the
//! paper's treatment of client control flow.

use std::collections::HashMap;

use canvas_easl::{ClassSpec, Spec};
use canvas_logic::TypeName;

use crate::ast::{ClassDecl, Expr, LValue, Stmt};
use crate::ir::{
    AllocSite, Cfg, Instr, MethodId, MethodIr, NodeId, Program, Site, Span, VarId, VarKind,
    Variable,
};
use crate::{parser, SourceError};

/// What kind of type a [`TypeName`] denotes for this program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TyKind {
    Component,
    Client,
    Opaque,
}

struct MethodSig {
    #[allow(dead_code)] // kept for symmetry with method_ids
    id: MethodId,
    class: String,
    name: String,
    is_static: bool,
    params: Vec<TypeName>,
    ret_ty: Option<TypeName>,
}

struct Tables<'a> {
    spec: &'a Spec,
    classes: &'a [ClassDecl],
    class_idx: HashMap<String, usize>,
    sigs: Vec<MethodSig>,
    method_ids: HashMap<(String, String), MethodId>,
    statics: HashMap<(String, String), VarId>,
}

impl Tables<'_> {
    fn ty_kind(&self, ty: &TypeName) -> TyKind {
        if self.spec.is_component_type(ty) {
            TyKind::Component
        } else if self.class_idx.contains_key(ty.as_str()) {
            TyKind::Client
        } else {
            TyKind::Opaque
        }
    }

    fn client_field_ty(&self, class: &TypeName, field: &str) -> Option<TypeName> {
        let c = &self.classes[*self.class_idx.get(class.as_str())?];
        c.fields.iter().find(|f| f.name == field).map(|f| f.ty)
    }
}

pub(crate) fn parse_and_lower(src: &str, spec: &Spec) -> Result<Program, SourceError> {
    let classes = parser::parse_program(src)?;

    let mut class_idx = HashMap::new();
    for (k, c) in classes.iter().enumerate() {
        if spec.is_component_type(&c.name) {
            return Err(SourceError::new(
                c.span.line,
                format!("client class {} shadows a component class", c.name),
            ));
        }
        if class_idx.insert(c.name.as_str().to_string(), k).is_some() {
            return Err(SourceError::new(c.span.line, format!("duplicate class {}", c.name)));
        }
    }

    // method signatures & ids
    let mut sigs = Vec::new();
    let mut method_ids = HashMap::new();
    for c in &classes {
        for m in &c.methods {
            let id = MethodId(sigs.len());
            let key = (c.name.as_str().to_string(), m.name.clone());
            if method_ids.insert(key, id).is_some() {
                return Err(SourceError::new(
                    m.span.line,
                    format!("duplicate method {}.{} (no overloading)", c.name, m.name),
                ));
            }
            sigs.push(MethodSig {
                id,
                class: c.name.as_str().to_string(),
                name: m.name.clone(),
                is_static: m.is_static,
                params: m.params.iter().map(|(_, t)| *t).collect(),
                ret_ty: m.ret_ty,
            });
        }
    }

    // statics become global variables
    let mut vars: Vec<Variable> = Vec::new();
    let mut statics = HashMap::new();
    for c in &classes {
        for f in &c.statics {
            let id = VarId(vars.len());
            vars.push(Variable {
                id,
                name: format!("{}.{}", c.name, f.name),
                ty: f.ty,
                owner: None,
                kind: VarKind::Static,
            });
            statics.insert((c.name.as_str().to_string(), f.name.clone()), id);
        }
    }

    let tables = Tables { spec, classes: &classes, class_idx, sigs, method_ids, statics };

    let mut methods = Vec::new();
    let mut alloc_count: u32 = 0;
    for c in &classes {
        for m in &c.methods {
            let mid = tables.method_ids[&(c.name.as_str().to_string(), m.name.clone())];
            let ir = lower_method(&tables, c, m, mid, &mut vars, &mut alloc_count)?;
            methods.push(ir);
        }
    }
    methods.sort_by_key(|m| m.id);

    let scmp_shaped =
        classes.iter().all(|c| c.fields.iter().all(|f| !spec.is_component_type(&f.ty)));
    let mut component_types: Vec<TypeName> = Vec::new();
    for v in &vars {
        if spec.is_component_type(&v.ty) && !component_types.contains(&v.ty) {
            component_types.push(v.ty);
        }
    }

    Ok(Program { classes, vars, methods, component_types, scmp_shaped })
}

struct Lower<'a, 'b> {
    t: &'a Tables<'b>,
    mid: MethodId,
    class: &'a ClassDecl,
    cfg: Cfg,
    cur: NodeId,
    vars: &'a mut Vec<Variable>,
    locals: HashMap<String, VarId>,
    temp_count: usize,
    alloc_count: &'a mut u32,
    this_var: Option<VarId>,
    ret_var: Option<VarId>,
}

impl Lower<'_, '_> {
    fn new_var(&mut self, name: String, ty: TypeName, kind: VarKind) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Variable { id, name, ty, owner: Some(self.mid), kind });
        id
    }

    fn temp(&mut self, ty: TypeName) -> VarId {
        let n = self.temp_count;
        self.temp_count += 1;
        self.new_var(format!("$t{n}"), ty, VarKind::Temp)
    }

    fn emit(&mut self, instr: Instr) {
        let next = self.cfg.fresh_node();
        self.cfg.add_edge(self.cur, instr, next);
        self.cur = next;
    }

    fn site(&self, span: Span, what: impl Into<String>) -> Site {
        Site { method: self.mid, span, what: what.into() }
    }

    fn var_ty(&self, v: VarId) -> TypeName {
        self.vars[v.0].ty
    }

    fn var_name(&self, v: VarId) -> String {
        self.vars[v.0].name.clone()
    }

    fn opaque_temp(&mut self) -> VarId {
        let t = self.temp(TypeName::new("Object"));
        self.emit(Instr::Nullify { dst: t });
        t
    }

    fn fresh_alloc(&mut self) -> AllocSite {
        let s = AllocSite(*self.alloc_count);
        *self.alloc_count += 1;
        s
    }

    /// Lowers `e` to a variable holding its value, or `None` for opaque
    /// values. Side effects are emitted either way.
    fn lower_expr(&mut self, e: &Expr, span: Span) -> Result<Option<VarId>, SourceError> {
        match e {
            Expr::Opaque => Ok(None),
            Expr::Var(name) => self.lower_var_read(name, span),
            Expr::FieldGet { base, field } => self.lower_field_get(base, field, span),
            Expr::New { ty, args, span } => self.lower_new(ty, args, *span, None).map(Some),
            Expr::Call { recv, method, args, span } => {
                self.lower_call(recv.as_deref(), method, args, *span, None)
            }
        }
    }

    /// Lowers `e` and assigns the result to `dst` (nullifying for opaque).
    fn lower_expr_into(&mut self, e: &Expr, dst: VarId, span: Span) -> Result<(), SourceError> {
        match e {
            Expr::New { ty, args, span } => {
                self.lower_new(ty, args, *span, Some(dst))?;
                Ok(())
            }
            Expr::Call { recv, method, args, span } => {
                match self.lower_call(recv.as_deref(), method, args, *span, Some(dst))? {
                    Some(v) if v == dst => Ok(()),
                    Some(v) => {
                        self.emit(Instr::Copy { dst, src: v });
                        Ok(())
                    }
                    None => {
                        self.emit(Instr::Nullify { dst });
                        Ok(())
                    }
                }
            }
            other => match self.lower_expr(other, span)? {
                Some(v) => {
                    self.emit(Instr::Copy { dst, src: v });
                    Ok(())
                }
                None => {
                    self.emit(Instr::Nullify { dst });
                    Ok(())
                }
            },
        }
    }

    fn lower_var_read(&mut self, name: &str, span: Span) -> Result<Option<VarId>, SourceError> {
        if name == "this" {
            return self
                .this_var
                .map(Some)
                .ok_or_else(|| SourceError::new(span.line, "`this` used in a static method"));
        }
        if let Some(&v) = self.locals.get(name) {
            return Ok(Some(v));
        }
        // instance field of the current class
        if self.class.fields.iter().any(|f| f.name == name) {
            let this = self.this_var.ok_or_else(|| {
                SourceError::new(span.line, format!("field {name:?} used in a static method"))
            })?;
            let fty = self
                .t
                .client_field_ty(&self.class.name, name)
                .ok_or_else(|| SourceError::new(span.line, format!("unknown field {name:?}")))?;
            let dst = self.temp(fty);
            self.emit(Instr::Load { dst, base: this, field: name.to_string() });
            return Ok(Some(dst));
        }
        // static of the current class
        if let Some(&v) =
            self.t.statics.get(&(self.class.name.as_str().to_string(), name.to_string()))
        {
            return Ok(Some(v));
        }
        Err(SourceError::new(span.line, format!("unknown identifier {name:?}")))
    }

    fn lower_field_get(
        &mut self,
        base: &Expr,
        field: &str,
        span: Span,
    ) -> Result<Option<VarId>, SourceError> {
        // `ClassName.staticField`
        if let Expr::Var(n) = base {
            if !self.is_value_name(n) {
                if let Some(&v) = self.t.statics.get(&(n.clone(), field.to_string())) {
                    return Ok(Some(v));
                }
                if self.t.class_idx.contains_key(n.as_str()) {
                    return Err(SourceError::new(
                        span.line,
                        format!("class {n} has no static field {field:?}"),
                    ));
                }
            }
        }
        let Some(b) = self.lower_expr(base, span)? else {
            return Ok(None); // reading a field of an opaque value
        };
        let bty = self.var_ty(b);
        match self.t.ty_kind(&bty) {
            TyKind::Client => {
                let fty = self.t.client_field_ty(&bty, field).ok_or_else(|| {
                    SourceError::new(span.line, format!("type {bty} has no field {field:?}"))
                })?;
                let dst = self.temp(fty);
                self.emit(Instr::Load { dst, base: b, field: field.to_string() });
                Ok(Some(dst))
            }
            TyKind::Component => Err(SourceError::new(
                span.line,
                format!("client code may not access fields of component type {bty}"),
            )),
            TyKind::Opaque => Ok(None),
        }
    }

    /// Whether `name` resolves to a value (local/param/field/static) rather
    /// than a class reference.
    fn is_value_name(&self, name: &str) -> bool {
        name == "this"
            || self.locals.contains_key(name)
            || self.class.fields.iter().any(|f| f.name == name)
            || self
                .t
                .statics
                .contains_key(&(self.class.name.as_str().to_string(), name.to_string()))
    }

    fn lower_args(&mut self, args: &[Expr], span: Span) -> Result<Vec<VarId>, SourceError> {
        let mut out = Vec::with_capacity(args.len());
        for a in args {
            match self.lower_expr(a, span)? {
                Some(v) => out.push(v),
                None => {
                    let t = self.opaque_temp();
                    out.push(t);
                }
            }
        }
        Ok(out)
    }

    fn lower_new(
        &mut self,
        ty: &TypeName,
        args: &[Expr],
        span: Span,
        preferred: Option<VarId>,
    ) -> Result<VarId, SourceError> {
        let avars = self.lower_args(args, span)?;
        match self.t.ty_kind(ty) {
            TyKind::Component => {
                let class = self.t.spec.class(ty.as_str()).ok_or_else(|| {
                    SourceError::new(span.line, format!("unknown component type {ty}"))
                })?;
                let arity = class.ctor().map_or(0, |c| c.params().len());
                if avars.len() != arity {
                    return Err(SourceError::new(
                        span.line,
                        format!(
                            "constructor of {ty} expects {arity} argument(s), got {}",
                            avars.len()
                        ),
                    ));
                }
                let dst =
                    preferred.filter(|d| self.var_ty(*d) == *ty).unwrap_or_else(|| self.temp(*ty));
                let site = self.fresh_alloc();
                let at = self.site(span, format!("new {ty}(...)"));
                self.emit(Instr::New { dst, ty: *ty, site, args: avars, at });
                Ok(dst)
            }
            TyKind::Client => {
                let ctor =
                    self.t.method_ids.get(&(ty.as_str().to_string(), ClassSpec::CTOR.to_string()));
                match ctor {
                    None if !avars.is_empty() => Err(SourceError::new(
                        span.line,
                        format!("class {ty} has no constructor but arguments were supplied"),
                    )),
                    ctor => {
                        let dst = preferred
                            .filter(|d| self.var_ty(*d) == *ty)
                            .unwrap_or_else(|| self.temp(*ty));
                        let site = self.fresh_alloc();
                        let at = self.site(span, format!("new {ty}(...)"));
                        self.emit(Instr::New { dst, ty: *ty, site, args: Vec::new(), at });
                        if let Some(&callee) = ctor {
                            let sig = &self.t.sigs[callee.0];
                            if sig.params.len() != avars.len() {
                                return Err(SourceError::new(
                                    span.line,
                                    format!(
                                        "constructor of {ty} expects {} argument(s), got {}",
                                        sig.params.len(),
                                        avars.len()
                                    ),
                                ));
                            }
                            let mut cargs = vec![dst];
                            cargs.extend(avars);
                            let at = self.site(span, format!("{ty}.<init>"));
                            self.emit(Instr::CallClient { dst: None, callee, args: cargs, at });
                        }
                        Ok(dst)
                    }
                }
            }
            TyKind::Opaque => {
                Err(SourceError::new(span.line, format!("allocation of unknown type {ty}")))
            }
        }
    }

    fn lower_call(
        &mut self,
        recv: Option<&Expr>,
        method: &str,
        args: &[Expr],
        span: Span,
        preferred: Option<VarId>,
    ) -> Result<Option<VarId>, SourceError> {
        // resolve receiver
        let resolved: ResolvedRecv = match recv {
            None => ResolvedRecv::CurrentClass,
            Some(Expr::Var(n))
                if !self.is_value_name(n) && self.t.class_idx.contains_key(n.as_str()) =>
            {
                ResolvedRecv::StaticClass(n.clone())
            }
            Some(e) => {
                let Some(rv) = self.lower_expr(e, span)? else {
                    // call on an opaque value: evaluate args for effect
                    self.lower_args(args, span)?;
                    return Ok(None);
                };
                ResolvedRecv::Value(rv)
            }
        };

        match resolved {
            ResolvedRecv::Value(rv) => {
                let rty = self.var_ty(rv);
                match self.t.ty_kind(&rty) {
                    TyKind::Component => {
                        self.lower_component_call(rv, method, args, span, preferred)
                    }
                    TyKind::Client => {
                        let callee = self
                            .t
                            .method_ids
                            .get(&(rty.as_str().to_string(), method.to_string()))
                            .copied()
                            .ok_or_else(|| {
                                SourceError::new(
                                    span.line,
                                    format!("class {rty} has no method {method:?}"),
                                )
                            })?;
                        if self.t.sigs[callee.0].is_static {
                            return Err(SourceError::new(
                                span.line,
                                format!("static method {rty}.{method} called through an instance"),
                            ));
                        }
                        let mut cargs = vec![rv];
                        cargs.extend(self.lower_args(args, span)?);
                        self.finish_client_call(callee, cargs, span, preferred, method)
                    }
                    TyKind::Opaque => {
                        self.lower_args(args, span)?;
                        Ok(None)
                    }
                }
            }
            ResolvedRecv::StaticClass(cname) => {
                let callee = self
                    .t
                    .method_ids
                    .get(&(cname.clone(), method.to_string()))
                    .copied()
                    .ok_or_else(|| {
                    SourceError::new(span.line, format!("class {cname} has no method {method:?}"))
                })?;
                if !self.t.sigs[callee.0].is_static {
                    return Err(SourceError::new(
                        span.line,
                        format!("instance method {cname}.{method} called without a receiver"),
                    ));
                }
                let cargs = self.lower_args(args, span)?;
                self.finish_client_call(callee, cargs, span, preferred, method)
            }
            ResolvedRecv::CurrentClass => {
                let cname = self.class.name.as_str().to_string();
                let callee = self
                    .t
                    .method_ids
                    .get(&(cname.clone(), method.to_string()))
                    .copied()
                    .ok_or_else(|| {
                    SourceError::new(span.line, format!("class {cname} has no method {method:?}"))
                })?;
                let mut cargs = Vec::new();
                if !self.t.sigs[callee.0].is_static {
                    let this = self.this_var.ok_or_else(|| {
                        SourceError::new(
                            span.line,
                            format!("instance method {method:?} called from a static context"),
                        )
                    })?;
                    cargs.push(this);
                }
                cargs.extend(self.lower_args(args, span)?);
                self.finish_client_call(callee, cargs, span, preferred, method)
            }
        }
    }

    fn lower_component_call(
        &mut self,
        rv: VarId,
        method: &str,
        args: &[Expr],
        span: Span,
        preferred: Option<VarId>,
    ) -> Result<Option<VarId>, SourceError> {
        let rty = self.var_ty(rv);
        let class =
            self.t.spec.class(rty.as_str()).ok_or_else(|| {
                SourceError::new(span.line, format!("unknown component type {rty}"))
            })?;
        let m = class.method(method);
        let known = m.is_some();
        let avars = self.lower_args(args, span)?;
        if let Some(m) = m {
            if m.params().len() != avars.len() {
                return Err(SourceError::new(
                    span.line,
                    format!(
                        "component method {rty}.{method} expects {} argument(s), got {}",
                        m.params().len(),
                        avars.len()
                    ),
                ));
            }
        }
        let dst = m.and_then(|m| m.ret_ty()).map(|rt| {
            preferred.filter(|d| self.var_ty(*d) == *rt).unwrap_or_else(|| self.temp(*rt))
        });
        let what = format!("{}.{method}()", self.var_name(rv));
        let at = self.site(span, what);
        self.emit(Instr::CallComponent {
            dst,
            recv: rv,
            method: method.to_string(),
            args: avars,
            known,
            at,
        });
        Ok(dst)
    }

    fn finish_client_call(
        &mut self,
        callee: MethodId,
        args: Vec<VarId>,
        span: Span,
        preferred: Option<VarId>,
        method: &str,
    ) -> Result<Option<VarId>, SourceError> {
        let sig = &self.t.sigs[callee.0];
        let expected = sig.params.len() + usize::from(!sig.is_static);
        if args.len() != expected {
            return Err(SourceError::new(
                span.line,
                format!(
                    "method {}.{} expects {expected} argument(s), got {}",
                    sig.class,
                    sig.name,
                    args.len()
                ),
            ));
        }
        let dst = sig
            .ret_ty
            .filter(|rt| self.t.ty_kind(rt) != TyKind::Opaque)
            .map(|rt| preferred.filter(|d| self.var_ty(*d) == rt).unwrap_or_else(|| self.temp(rt)));
        let at = self.site(span, format!("{method}(...)"));
        self.emit(Instr::CallClient { dst, callee, args, at });
        Ok(dst)
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), SourceError> {
        match s {
            Stmt::VarDecl { name, ty, init, span } => {
                if self.locals.contains_key(name) {
                    return Err(SourceError::new(
                        span.line,
                        format!("duplicate local variable {name:?} (shadowing unsupported)"),
                    ));
                }
                let v = self.new_var(name.clone(), *ty, VarKind::Local);
                self.locals.insert(name.clone(), v);
                match init {
                    Some(e) => self.lower_expr_into(e, v, *span)?,
                    None => self.emit(Instr::Nullify { dst: v }),
                }
                Ok(())
            }
            Stmt::Assign { lhs, rhs, span } => self.lower_assign(lhs, rhs, *span),
            Stmt::ExprStmt { expr, span } => {
                self.lower_expr(expr, *span)?;
                Ok(())
            }
            Stmt::If { cond_effects, then, els, span } => {
                for e in cond_effects {
                    self.lower_expr(e, *span)?;
                }
                let branch = self.cur;
                let join = self.cfg.fresh_node();
                for arm in [then, els] {
                    let entry = self.cfg.fresh_node();
                    self.cfg.add_edge(branch, Instr::Nop, entry);
                    self.cur = entry;
                    for s in arm {
                        self.lower_stmt(s)?;
                    }
                    self.cfg.add_edge(self.cur, Instr::Nop, join);
                }
                self.cur = join;
                Ok(())
            }
            Stmt::While { cond_effects, body, span } => {
                let head = self.cfg.fresh_node();
                self.cfg.add_edge(self.cur, Instr::Nop, head);
                self.cur = head;
                for e in cond_effects {
                    self.lower_expr(e, *span)?;
                }
                let test = self.cur;
                let body_entry = self.cfg.fresh_node();
                let after = self.cfg.fresh_node();
                self.cfg.add_edge(test, Instr::Nop, body_entry);
                self.cfg.add_edge(test, Instr::Nop, after);
                self.cur = body_entry;
                for s in body {
                    self.lower_stmt(s)?;
                }
                self.cfg.add_edge(self.cur, Instr::Nop, head);
                self.cur = after;
                Ok(())
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.lower_stmt(s)?;
                }
                Ok(())
            }
            Stmt::Return { value, span } => {
                match (value, self.ret_var) {
                    (Some(e), Some(rv)) => self.lower_expr_into(e, rv, *span)?,
                    (Some(e), None) => {
                        self.lower_expr(e, *span)?;
                    }
                    (None, _) => {}
                }
                let exit = self.cfg.exit();
                self.cfg.add_edge(self.cur, Instr::Nop, exit);
                self.cur = self.cfg.fresh_node(); // unreachable continuation
                Ok(())
            }
        }
    }

    fn lower_assign(&mut self, lhs: &LValue, rhs: &Expr, span: Span) -> Result<(), SourceError> {
        match lhs {
            LValue::Var(name) => {
                if let Some(&v) = self.locals.get(name) {
                    return self.lower_expr_into(rhs, v, span);
                }
                // instance field of current class: this.name = rhs
                if self.class.fields.iter().any(|f| f.name == name.as_str()) {
                    let this = self.this_var.ok_or_else(|| {
                        SourceError::new(
                            span.line,
                            format!("field {name:?} assigned in a static method"),
                        )
                    })?;
                    let src = self.rhs_to_var(rhs, span)?;
                    self.emit(Instr::Store { base: this, field: name.clone(), src });
                    return Ok(());
                }
                if let Some(&v) =
                    self.t.statics.get(&(self.class.name.as_str().to_string(), name.clone()))
                {
                    return self.lower_expr_into(rhs, v, span);
                }
                Err(SourceError::new(span.line, format!("unknown identifier {name:?}")))
            }
            LValue::Field { base, field } => {
                // `ClassName.staticField = rhs`
                if let Expr::Var(n) = &**base {
                    if !self.is_value_name(n) {
                        if let Some(&v) = self.t.statics.get(&(n.clone(), field.clone())) {
                            return self.lower_expr_into(rhs, v, span);
                        }
                    }
                }
                let Some(b) = self.lower_expr(base, span)? else {
                    return Err(SourceError::new(span.line, "assignment through an opaque value"));
                };
                let bty = self.var_ty(b);
                if self.t.ty_kind(&bty) != TyKind::Client {
                    return Err(SourceError::new(
                        span.line,
                        format!("cannot assign field of non-client type {bty}"),
                    ));
                }
                if self.t.client_field_ty(&bty, field).is_none() {
                    return Err(SourceError::new(
                        span.line,
                        format!("type {bty} has no field {field:?}"),
                    ));
                }
                let src = self.rhs_to_var(rhs, span)?;
                self.emit(Instr::Store { base: b, field: field.clone(), src });
                Ok(())
            }
        }
    }

    fn rhs_to_var(&mut self, rhs: &Expr, span: Span) -> Result<VarId, SourceError> {
        match self.lower_expr(rhs, span)? {
            Some(v) => Ok(v),
            None => Ok(self.opaque_temp()),
        }
    }
}

enum ResolvedRecv {
    CurrentClass,
    StaticClass(String),
    Value(VarId),
}

fn lower_method(
    tables: &Tables<'_>,
    class: &ClassDecl,
    m: &crate::ast::MethodDecl,
    mid: MethodId,
    vars: &mut Vec<Variable>,
    alloc_count: &mut u32,
) -> Result<MethodIr, SourceError> {
    let mut lw = Lower {
        t: tables,
        mid,
        class,
        cfg: Cfg::new(),
        cur: NodeId(0),
        vars,
        locals: HashMap::new(),
        temp_count: 0,
        alloc_count,
        this_var: None,
        ret_var: None,
    };
    lw.cur = lw.cfg.entry();

    let mut params = Vec::new();
    if !m.is_static {
        let v = lw.new_var("this".to_string(), class.name, VarKind::Param(0));
        lw.this_var = Some(v);
        params.push(v);
    }
    for (k, (name, ty)) in m.params.iter().enumerate() {
        let idx = k + usize::from(!m.is_static);
        let v = lw.new_var(name.clone(), *ty, VarKind::Param(idx));
        if lw.locals.insert(name.clone(), v).is_some() {
            return Err(SourceError::new(m.span.line, format!("duplicate parameter {name:?}")));
        }
        params.push(v);
    }
    if let Some(rt) = &m.ret_ty {
        if tables.ty_kind(rt) != TyKind::Opaque {
            lw.ret_var = Some(lw.new_var("$ret".to_string(), *rt, VarKind::Ret));
        }
    }

    for s in &m.body {
        lw.lower_stmt(s)?;
    }
    let exit = lw.cfg.exit();
    lw.cfg.add_edge(lw.cur, Instr::Nop, exit);

    Ok(MethodIr {
        id: mid,
        class: class.name,
        name: m.name.clone(),
        is_static: m.is_static,
        params,
        ret_var: lw.ret_var,
        cfg: lw.cfg,
        span: m.span,
        end_line: m.end_line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    fn cmp() -> canvas_easl::Spec {
        canvas_easl::builtin::cmp()
    }

    const FIG3: &str = r#"
        class Main {
            static void main() {
                Set v = new Set();
                Iterator i1 = v.iterator();
                Iterator i2 = v.iterator();
                Iterator i3 = i1;
                i1.next();
                i1.remove();
                if (cond()) { i2.next(); }
                if (cond()) { i3.next(); }
                v.add("x");
                if (cond()) { i1.next(); }
            }
            static boolean cond() { return true; }
        }
    "#;

    #[test]
    fn lower_fig3() {
        let p = Program::parse(FIG3, &cmp()).unwrap();
        assert!(p.is_scmp_shaped());
        let main = p.method_named("Main.main").unwrap();
        let comp_calls = main
            .cfg
            .edges()
            .iter()
            .filter(|e| matches!(e.instr, Instr::CallComponent { .. }))
            .count();
        // iterator() x2, next() x4, remove(), add() = 8
        assert_eq!(comp_calls, 8);
        let news = main.cfg.edges().iter().filter(|e| matches!(e.instr, Instr::New { .. })).count();
        assert_eq!(news, 1);
    }

    #[test]
    fn heap_client_not_scmp() {
        let p = Program::parse(
            "class W { Set s; W() { s = new Set(); } void touch() { s.add(\"x\"); } }",
            &cmp(),
        )
        .unwrap();
        assert!(!p.is_scmp_shaped());
        // ctor: Store of a component value into a field
        let ctor = p.method_named("W.<init>").unwrap();
        assert!(ctor.cfg.edges().iter().any(|e| matches!(e.instr, Instr::Store { .. })));
        // touch: Load then CallComponent
        let touch = p.method_named("W.touch").unwrap();
        assert!(touch.cfg.edges().iter().any(|e| matches!(e.instr, Instr::Load { .. })));
    }

    #[test]
    fn statics_are_global_vars() {
        let p = Program::parse(
            "class G { static Set shared; static void init() { shared = new Set(); } static void poke() { shared.add(\"y\"); } }",
            &cmp(),
        )
        .unwrap();
        assert!(p.is_scmp_shaped());
        assert_eq!(p.static_vars().count(), 1);
        let v = p.static_vars().next().unwrap();
        assert_eq!(v.name, "G.shared");
        assert!(v.owner.is_none());
    }

    #[test]
    fn client_calls_and_returns() {
        let p = Program::parse(
            r#"
            class Main {
                static void main() {
                    Set s = mk();
                    Iterator i = s.iterator();
                    use(i);
                }
                static Set mk() { return new Set(); }
                static void use(Iterator it) { it.next(); }
            }
            "#,
            &cmp(),
        )
        .unwrap();
        let mk = p.method_named("Main.mk").unwrap();
        assert!(mk.ret_var.is_some());
        let main = p.method_named("Main.main").unwrap();
        let client_calls =
            main.cfg.edges().iter().filter(|e| matches!(e.instr, Instr::CallClient { .. })).count();
        assert_eq!(client_calls, 2);
        let cg = p.call_graph();
        assert_eq!(cg[&main.id].len(), 2);
    }

    #[test]
    fn unknown_component_method_is_tolerated() {
        let p = Program::parse(
            "class A { void m(Set s) { for (Iterator i = s.iterator(); i.hasNext(); ) { i.next(); } } }",
            &cmp(),
        )
        .unwrap();
        let m = p.method_named("A.m").unwrap();
        let unknown = m
            .cfg
            .edges()
            .iter()
            .filter(|e| matches!(&e.instr, Instr::CallComponent { known: false, .. }))
            .count();
        assert_eq!(unknown, 1); // hasNext
    }

    #[test]
    fn lowering_errors() {
        let s = cmp();
        // component internals are off limits
        assert!(Program::parse("class A { void m(Iterator i) { Set x = i.set; } }", &s).is_err());
        // unknown identifier
        assert!(Program::parse("class A { void m() { x.next(); } }", &s).is_err());
        // arity mismatch on component call
        assert!(Program::parse("class A { void m(Set s) { s.iterator(s); } }", &s).is_err());
        // class shadowing a component class
        assert!(Program::parse("class Set { }", &s).is_err());
        // `this` in static method
        assert!(
            Program::parse("class A { static void m() { this.n(); } void n() { } }", &s).is_err()
        );
        // duplicate local
        assert!(Program::parse(
            "class A { void m() { Set s = new Set(); Set s = new Set(); } }",
            &s
        )
        .is_err());
    }

    #[test]
    fn return_in_middle_splits_cfg() {
        let p = Program::parse(
            "class A { Set m(Set s) { if (x()) { return s; } return new Set(); } static boolean x() { return true; } }",
            &cmp(),
        )
        .unwrap();
        let m = p.method_named("A.m").unwrap();
        // two paths into the exit from the two returns + trailing nop
        let exit = m.cfg.exit();
        let into_exit = m.cfg.edges().iter().filter(|e| e.to == exit).count();
        assert!(into_exit >= 2);
    }
}
