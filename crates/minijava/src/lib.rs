//! Mini-Java — the client language analysed by the certifiers.
//!
//! The paper analyses Java programs that use a component such as the Java
//! Collections Framework. The analyses only ever inspect the *component-
//! relevant skeleton* of a client: reference copies, field loads/stores,
//! allocations, (component and client) method calls, and control flow with
//! nondeterministic branches. Mini-Java models exactly that skeleton (see
//! DESIGN.md for the substitution rationale):
//!
//! * classes with instance fields, `static` fields, constructors, and
//!   (static or instance) methods;
//! * statements: local declarations, assignments, `if`/`else`, `while`,
//!   `for`, `return`, expression statements;
//! * expressions: variable/field paths, `new`, method calls, and *opaque*
//!   expressions (literals, arithmetic, …) which the analyses ignore;
//! * branch conditions are evaluated for their component calls and then
//!   abstracted as nondeterministic choices, as in the paper.
//!
//! Parsing produces a [`Program`]: a global variable table (statics plus
//! per-method params/locals/temps), and one control-flow graph per method
//! whose edges carry three-address [`Instr`]uctions.
//!
//! # Example
//!
//! ```
//! use canvas_minijava::Program;
//!
//! let spec = canvas_easl::builtin::cmp();
//! let program = Program::parse(
//!     r#"
//!     class Main {
//!         static void main() {
//!             Set v = new Set();
//!             Iterator i = v.iterator();
//!             i.next();
//!         }
//!     }
//!     "#,
//!     &spec,
//! )?;
//! assert!(program.is_scmp_shaped());
//! assert_eq!(program.methods().len(), 1);
//! # Ok::<(), canvas_minijava::SourceError>(())
//! ```

// the panic-free frontier: code reachable from external input must
// return typed errors, never panic (test code is exempt)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod ast;
pub mod inline;
mod ir;
mod lower;
mod parser;
pub mod synth;

pub use ast::{ClassDecl, Expr, FieldDecl, LValue, MethodDecl, Stmt};
pub use ir::{
    AllocSite, Cfg, Edge, Instr, MethodId, MethodIr, NodeId, Program, Site, Span, VarId, VarKind,
    Variable,
};

/// Errors produced while parsing or lowering a mini-Java program.
///
/// This is the same source-location-plus-message shape as EASL errors; the
/// alias keeps signatures readable.
pub type SourceError = canvas_easl::EaslError;
