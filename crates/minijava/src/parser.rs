//! Recursive-descent parser for mini-Java, producing the [`crate::ast`] tree.
//!
//! Conditions of `if`/`while`/`for` are parsed with a full (boolean/
//! comparison/arithmetic) grammar but only their *component-relevant*
//! subexpressions (calls, allocations) are retained, as `cond_effects`;
//! the branch itself is nondeterministic, exactly as in the paper's
//! abstraction of client control flow.

use canvas_easl::lexer::{lex, Cursor, Tok};
use canvas_logic::TypeName;

use crate::ast::{ClassDecl, Expr, FieldDecl, LValue, MethodDecl, Stmt};
use crate::ir::Span;
use crate::SourceError;

/// The span of the token the cursor currently points at.
fn pos(cur: &Cursor) -> Span {
    Span::new(cur.line(), cur.col())
}

const CTOR: &str = "<init>";

pub(crate) fn parse_program(src: &str) -> Result<Vec<ClassDecl>, SourceError> {
    let mut cur = Cursor::new(lex(src)?);
    let mut classes = Vec::new();
    while !cur.at_end() {
        classes.push(parse_class(&mut cur)?);
    }
    if classes.is_empty() {
        return Err(SourceError::new(0, "empty program"));
    }
    Ok(classes)
}

fn parse_class(cur: &mut Cursor) -> Result<ClassDecl, SourceError> {
    let span = pos(cur);
    cur.expect_kw("class")?;
    let name = cur.expect_ident()?;
    cur.expect("{")?;
    let mut fields = Vec::new();
    let mut statics = Vec::new();
    let mut methods = Vec::new();
    while !cur.eat("}") {
        let mspan = pos(cur);
        let mline = mspan.line;
        let is_static = cur.eat_kw("static");
        let first = cur.expect_ident()?;
        if matches!(cur.peek(), Some(Tok::Punct("("))) {
            // constructor
            if first != name {
                return Err(SourceError::new(
                    mline,
                    format!("constructor name {first:?} does not match class {name:?}"),
                ));
            }
            if is_static {
                return Err(SourceError::new(mline, "constructors cannot be static"));
            }
            let params = parse_params(cur)?;
            let (body, end_line) = parse_block(cur)?;
            methods.push(MethodDecl {
                name: CTOR.to_string(),
                is_static: false,
                params,
                ret_ty: None,
                body,
                span: mspan,
                end_line,
            });
            continue;
        }
        let second = cur.expect_ident()?;
        if matches!(cur.peek(), Some(Tok::Punct("("))) {
            let params = parse_params(cur)?;
            let (body, end_line) = parse_block(cur)?;
            let ret_ty = (first != "void").then(|| TypeName::new(first));
            methods.push(MethodDecl {
                name: second,
                is_static,
                params,
                ret_ty,
                body,
                span: mspan,
                end_line,
            });
        } else {
            if cur.eat("=") {
                return Err(SourceError::new(
                    mline,
                    "field initializers are not supported; assign in a method",
                ));
            }
            cur.expect(";")?;
            let decl = FieldDecl { name: second, ty: TypeName::new(first), span: mspan };
            if is_static {
                statics.push(decl);
            } else {
                fields.push(decl);
            }
        }
    }
    Ok(ClassDecl { name: TypeName::new(name), fields, statics, methods, span })
}

fn parse_params(cur: &mut Cursor) -> Result<Vec<(String, TypeName)>, SourceError> {
    cur.expect("(")?;
    let mut out = Vec::new();
    if !cur.eat(")") {
        loop {
            let ty = cur.expect_ident()?;
            let name = cur.expect_ident()?;
            out.push((name, TypeName::new(ty)));
            if cur.eat(")") {
                break;
            }
            cur.expect(",")?;
        }
    }
    Ok(out)
}

/// Parses `{ stmts }`; also returns the line of the closing brace.
fn parse_block(cur: &mut Cursor) -> Result<(Vec<Stmt>, u32), SourceError> {
    cur.expect("{")?;
    let mut out = Vec::new();
    loop {
        let close_line = cur.line();
        if cur.eat("}") {
            return Ok((out, close_line));
        }
        out.push(parse_stmt(cur)?);
    }
}

fn parse_block_or_stmt(cur: &mut Cursor) -> Result<Vec<Stmt>, SourceError> {
    if matches!(cur.peek(), Some(Tok::Punct("{"))) {
        Ok(parse_block(cur)?.0)
    } else {
        Ok(vec![parse_stmt(cur)?])
    }
}

fn parse_stmt(cur: &mut Cursor) -> Result<Stmt, SourceError> {
    let span = pos(cur);
    if cur.eat_kw("if") {
        cur.expect("(")?;
        let cond_effects = parse_cond(cur)?;
        cur.expect(")")?;
        let then = parse_block_or_stmt(cur)?;
        let els = if cur.eat_kw("else") { parse_block_or_stmt(cur)? } else { Vec::new() };
        return Ok(Stmt::If { cond_effects, then, els, span });
    }
    if cur.eat_kw("while") {
        cur.expect("(")?;
        let cond_effects = parse_cond(cur)?;
        cur.expect(")")?;
        let body = parse_block_or_stmt(cur)?;
        return Ok(Stmt::While { cond_effects, body, span });
    }
    if cur.eat_kw("for") {
        return parse_for(cur, span);
    }
    if cur.eat_kw("return") {
        if cur.eat(";") {
            return Ok(Stmt::Return { value: None, span });
        }
        let value = parse_expr(cur)?;
        cur.expect(";")?;
        return Ok(Stmt::Return { value: Some(value), span });
    }
    // declaration? two consecutive identifiers
    if let (Some(Tok::Ident(_)), Some(Tok::Ident(_))) = (cur.peek(), cur.peek_at(1)) {
        let ty = TypeName::new(cur.expect_ident()?);
        let name = cur.expect_ident()?;
        let init = if cur.eat("=") { Some(parse_expr(cur)?) } else { None };
        cur.expect(";")?;
        return Ok(Stmt::VarDecl { name, ty, init, span });
    }
    let s = parse_simple(cur, span)?;
    cur.expect(";")?;
    Ok(s)
}

/// `for (init; cond; update) body` desugars to
/// `{ init; while (cond) { body; update; } }` using [`Stmt::Block`] for the
/// init+loop sequence (a block introduces no branching).
fn parse_for(cur: &mut Cursor, span: Span) -> Result<Stmt, SourceError> {
    cur.expect("(")?;
    // init
    let mut pre: Vec<Stmt> = Vec::new();
    if !cur.eat(";") {
        if let (Some(Tok::Ident(_)), Some(Tok::Ident(_))) = (cur.peek(), cur.peek_at(1)) {
            let ty = TypeName::new(cur.expect_ident()?);
            let name = cur.expect_ident()?;
            let init = if cur.eat("=") { Some(parse_expr(cur)?) } else { None };
            pre.push(Stmt::VarDecl { name, ty, init, span });
        } else {
            pre.push(parse_simple(cur, span)?);
        }
        cur.expect(";")?;
    }
    // condition
    let cond_effects =
        if matches!(cur.peek(), Some(Tok::Punct(";"))) { Vec::new() } else { parse_cond(cur)? };
    cur.expect(";")?;
    // update
    let update = if matches!(cur.peek(), Some(Tok::Punct(")"))) {
        None
    } else {
        Some(parse_simple(cur, span)?)
    };
    cur.expect(")")?;
    let mut body = parse_block_or_stmt(cur)?;
    if let Some(u) = update {
        body.push(u);
    }
    let whl = Stmt::While { cond_effects, body, span };
    if pre.is_empty() {
        Ok(whl)
    } else {
        pre.push(whl);
        Ok(Stmt::Block(pre))
    }
}

/// Assignment or expression statement (no trailing `;`).
fn parse_simple(cur: &mut Cursor, span: Span) -> Result<Stmt, SourceError> {
    let e = parse_expr(cur)?;
    if cur.eat("++") {
        return Ok(Stmt::ExprStmt { expr: Expr::Opaque, span });
    }
    if cur.eat("=") {
        let rhs = parse_expr(cur)?;
        let lhs = match e {
            Expr::Var(n) => LValue::Var(n),
            Expr::FieldGet { base, field } => LValue::Field { base, field },
            other => {
                return Err(SourceError::new(
                    span.line,
                    format!("expression {other:?} is not assignable"),
                ))
            }
        };
        return Ok(Stmt::Assign { lhs, rhs, span });
    }
    Ok(Stmt::ExprStmt { expr: e, span })
}

/// Parses a boolean condition, returning the tracked subexpressions it
/// evaluates (calls/allocations), in evaluation order.
fn parse_cond(cur: &mut Cursor) -> Result<Vec<Expr>, SourceError> {
    let mut effects = Vec::new();
    parse_or_cond(cur, &mut effects)?;
    Ok(effects)
}

fn parse_or_cond(cur: &mut Cursor, eff: &mut Vec<Expr>) -> Result<(), SourceError> {
    parse_and_cond(cur, eff)?;
    while cur.eat("||") {
        parse_and_cond(cur, eff)?;
    }
    Ok(())
}

fn parse_and_cond(cur: &mut Cursor, eff: &mut Vec<Expr>) -> Result<(), SourceError> {
    parse_not_cond(cur, eff)?;
    while cur.eat("&&") {
        parse_not_cond(cur, eff)?;
    }
    Ok(())
}

fn parse_not_cond(cur: &mut Cursor, eff: &mut Vec<Expr>) -> Result<(), SourceError> {
    if cur.eat("!") {
        return parse_not_cond(cur, eff);
    }
    if matches!(cur.peek(), Some(Tok::Punct("("))) {
        // grouped condition
        cur.expect("(")?;
        parse_or_cond(cur, eff)?;
        cur.expect(")")?;
    } else {
        let e = parse_arith(cur, eff)?;
        push_effect(e, eff);
    }
    // optional comparison tail
    for op in ["==", "!=", "<", "<=", ">", ">="] {
        if cur.eat(op) {
            let e = parse_arith(cur, eff)?;
            push_effect(e, eff);
            break;
        }
    }
    Ok(())
}

fn parse_arith(cur: &mut Cursor, eff: &mut Vec<Expr>) -> Result<Expr, SourceError> {
    let first = parse_expr(cur)?;
    if !matches!(cur.peek(), Some(Tok::Punct("+" | "-"))) {
        return Ok(first);
    }
    // arithmetic: the result is opaque but operand effects are kept
    push_effect(first, eff);
    while cur.eat("+") || cur.eat("-") {
        let e = parse_expr(cur)?;
        push_effect(e, eff);
    }
    Ok(Expr::Opaque)
}

fn push_effect(e: Expr, eff: &mut Vec<Expr>) {
    if contains_call(&e) {
        eff.push(e);
    }
}

fn contains_call(e: &Expr) -> bool {
    match e {
        Expr::Call { .. } | Expr::New { .. } => true,
        Expr::FieldGet { base, .. } => contains_call(base),
        Expr::Var(_) | Expr::Opaque => false,
    }
}

fn parse_expr(cur: &mut Cursor) -> Result<Expr, SourceError> {
    let span = pos(cur);
    let mut e = match cur.peek() {
        Some(Tok::Ident(id)) if id == "new" => {
            cur.next_tok()?;
            let ty = cur.expect_ident()?;
            let args = parse_args(cur)?;
            Expr::New { ty: TypeName::new(ty), args, span }
        }
        Some(Tok::Ident(id)) if id == "null" || id == "true" || id == "false" => {
            cur.next_tok()?;
            Expr::Opaque
        }
        Some(Tok::Ident(_)) => {
            let name = cur.expect_ident()?;
            if matches!(cur.peek(), Some(Tok::Punct("("))) {
                let args = parse_args(cur)?;
                Expr::Call { recv: None, method: name, args, span }
            } else {
                Expr::Var(name)
            }
        }
        Some(Tok::Str(_)) | Some(Tok::Int(_)) => {
            cur.next_tok()?;
            Expr::Opaque
        }
        Some(Tok::Punct("(")) => {
            cur.next_tok()?;
            let inner = parse_expr(cur)?;
            cur.expect(")")?;
            inner
        }
        other => {
            return Err(SourceError::new(
                span.line,
                format!("expected expression, found {other:?}"),
            ))
        }
    };
    // postfix chain; calls keep the span of the whole chain's start so a
    // diagnostic underlines `i.next()` from `i`, not from `next`
    while cur.eat(".") {
        let member = cur.expect_ident()?;
        if matches!(cur.peek(), Some(Tok::Punct("("))) {
            let args = parse_args(cur)?;
            e = Expr::Call { recv: Some(Box::new(e)), method: member, args, span };
        } else {
            e = Expr::FieldGet { base: Box::new(e), field: member };
        }
    }
    Ok(e)
}

fn parse_args(cur: &mut Cursor) -> Result<Vec<Expr>, SourceError> {
    cur.expect("(")?;
    let mut out = Vec::new();
    if !cur.eat(")") {
        loop {
            out.push(parse_expr(cur)?);
            if cur.eat(")") {
                break;
            }
            cur.expect(",")?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_fig3_shape() {
        let classes = parse_program(
            r#"
            class Main {
                static void main() {
                    Set v = new Set();
                    Iterator i1 = v.iterator();
                    Iterator i2 = v.iterator();
                    Iterator i3 = i1;
                    i1.next();
                    i1.remove();
                    if (unknown()) { i2.next(); }
                    if (unknown()) { i3.next(); }
                    v.add("x");
                    if (unknown()) { i1.next(); }
                }
                static boolean unknown() { return true; }
            }
            "#,
        )
        .unwrap();
        assert_eq!(classes.len(), 1);
        let main = &classes[0].methods[0];
        assert_eq!(main.body.len(), 10);
        match &main.body[0] {
            Stmt::VarDecl { name, init: Some(Expr::New { .. }), .. } => assert_eq!(name, "v"),
            other => panic!("unexpected {other:?}"),
        }
        // `if (unknown())` keeps the call as a condition effect
        match &main.body[6] {
            Stmt::If { cond_effects, then, .. } => {
                assert_eq!(cond_effects.len(), 1);
                assert_eq!(then.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_for_desugars() {
        let classes = parse_program(
            "class A { void m(Set s) { for (Iterator i = s.iterator(); i.hasNext(); ) { i.next(); } } }",
        )
        .unwrap();
        let body = &classes[0].methods[0].body;
        assert_eq!(body.len(), 1);
        match &body[0] {
            Stmt::Block(stmts) => {
                assert_eq!(stmts.len(), 2); // decl + while
                match &stmts[1] {
                    Stmt::While { cond_effects, body, .. } => {
                        assert_eq!(cond_effects.len(), 1); // i.hasNext()
                        assert_eq!(body.len(), 1);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_field_assign_and_statics() {
        let classes = parse_program(
            "class W { Set s; static W inst; W() { s = new Set(); } void add(Object o) { s.add(o); } }",
        )
        .unwrap();
        let c = &classes[0];
        assert_eq!(c.fields.len(), 1);
        assert_eq!(c.statics.len(), 1);
        assert_eq!(c.methods[0].name, "<init>");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_program("").is_err());
        assert!(parse_program("class A { static A() {} }").is_err());
        assert!(parse_program("class A { B() {} }").is_err());
        assert!(parse_program("class A { Set s = new Set(); }").is_err());
        assert!(parse_program("class A { void m() { 3 = x; } }").is_err());
    }

    #[test]
    fn chained_calls_parse() {
        let classes =
            parse_program("class A { void m(W w) { w.list().iterator().next(); } }").unwrap();
        match &classes[0].methods[0].body[0] {
            Stmt::ExprStmt { expr: Expr::Call { method, recv: Some(r), .. }, .. } => {
                assert_eq!(method, "next");
                assert!(matches!(**r, Expr::Call { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
