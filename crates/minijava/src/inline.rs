//! Whole-program inlining of client calls into `main`.
//!
//! The intraprocedural certifiers (in particular the TVLA engines of
//! paper §5, which have no interprocedural story) can be given
//! whole-program precision on non-recursive clients by inlining every
//! client call into `main`. Callee variables are re-homed into `main`
//! (one fresh copy per *call site*, so distinct activations never share
//! state), parameter passing becomes reference copies, and returns become
//! a copy from the callee's return slot.

use std::collections::HashMap;

use crate::ir::{Cfg, Instr, MethodId, NodeId, Program, VarId};
use crate::SourceError;

/// Produces a copy of `program` whose `main` has every (transitive) client
/// call inlined.
///
/// # Errors
///
/// Fails on recursive call graphs or when the inlined CFG would exceed
/// `max_nodes`.
pub fn inline_main(program: &Program, max_nodes: usize) -> Result<Program, SourceError> {
    let main = program
        .main_method()
        .ok_or_else(|| SourceError::new(0, "inlining needs a static main"))?
        .id;
    let mut out = program.clone();
    let mut ctx = Inliner { src: program, out: &mut out, main, max_nodes };
    let mut on_stack = Vec::new();
    let cfg = ctx.inline_method(main, &mut on_stack)?;
    out.replace_cfg(main, cfg);
    Ok(out)
}

struct Inliner<'a> {
    src: &'a Program,
    out: &'a mut Program,
    main: MethodId,
    max_nodes: usize,
}

impl Inliner<'_> {
    /// Returns a CFG for `mid` with all client calls recursively inlined;
    /// variables referenced are `mid`'s own (for the root) or fresh copies
    /// created by the caller's splice.
    fn inline_method(
        &mut self,
        mid: MethodId,
        on_stack: &mut Vec<MethodId>,
    ) -> Result<Cfg, SourceError> {
        if on_stack.contains(&mid) {
            return Err(SourceError::new(
                self.src.method(mid).span.line,
                format!("cannot inline recursive method {}", self.src.method(mid).qualified_name()),
            ));
        }
        on_stack.push(mid);
        let base = self.src.method(mid).cfg.clone();
        let mut cfg = Cfg::new();
        // pre-allocate the same node ids as the base CFG
        while cfg.node_count() < base.node_count() {
            cfg.fresh_node();
        }
        for e in base.edges() {
            match &e.instr {
                Instr::CallClient { dst, callee, args, .. } => {
                    self.splice_call(&mut cfg, e.from, e.to, *dst, *callee, args, on_stack)?;
                }
                other => cfg.add_edge(e.from, other.clone(), e.to),
            }
            if cfg.node_count() > self.max_nodes {
                on_stack.pop();
                return Err(SourceError::new(
                    self.src.method(mid).span.line,
                    format!("inlined control-flow graph exceeds {} nodes", self.max_nodes),
                ));
            }
        }
        on_stack.pop();
        Ok(cfg)
    }

    /// Splices one call site: param copies, the (recursively inlined)
    /// callee body over fresh variables, then the return copy.
    #[allow(clippy::too_many_arguments)]
    fn splice_call(
        &mut self,
        cfg: &mut Cfg,
        from: NodeId,
        to: NodeId,
        dst: Option<VarId>,
        callee: MethodId,
        args: &[VarId],
        on_stack: &mut Vec<MethodId>,
    ) -> Result<(), SourceError> {
        let callee_cfg = self.inline_method(callee, on_stack)?;
        let callee_ir = self.src.method(callee).clone();

        // fresh copies of every variable owned by the callee
        let mut var_map: HashMap<VarId, VarId> = HashMap::new();
        let remap = |v: VarId, out: &mut Program, map: &mut HashMap<VarId, VarId>| -> VarId {
            if out.var(v).owner == Some(callee) {
                *map.entry(v).or_insert_with(|| out.duplicate_var_for(self.main, v))
            } else {
                v // statics and caller vars pass through
            }
        };

        // parameter copies (receiver is parameter 0 of instance methods)
        let mut cur = from;
        for (k, &p) in callee_ir.params.iter().enumerate() {
            let p2 = remap(p, self.out, &mut var_map);
            let next = cfg.fresh_node();
            match args.get(k) {
                Some(&a) => cfg.add_edge(cur, Instr::Copy { dst: p2, src: a }, next),
                None => cfg.add_edge(cur, Instr::Nullify { dst: p2 }, next),
            }
            cur = next;
        }
        // locals start null in this activation
        for v in self.src.vars().iter().filter(|v| v.owner == Some(callee)) {
            if callee_ir.params.contains(&v.id) {
                continue;
            }
            let v2 = remap(v.id, self.out, &mut var_map);
            let next = cfg.fresh_node();
            cfg.add_edge(cur, Instr::Nullify { dst: v2 }, next);
            cur = next;
        }

        // splice the callee body with remapped nodes and variables
        let offset = cfg.node_count();
        for _ in 0..callee_cfg.node_count() {
            cfg.fresh_node();
        }
        let mapn = |n: NodeId| NodeId(offset + n.0);
        cfg.add_edge(cur, Instr::Nop, mapn(callee_cfg.entry()));
        for e in callee_cfg.edges() {
            let instr = remap_instr(&e.instr, self.out, &mut var_map, callee, self.main);
            cfg.add_edge(mapn(e.from), instr, mapn(e.to));
        }

        // return value
        let after_exit = mapn(callee_cfg.exit());
        match (dst, callee_ir.ret_var) {
            (Some(d), Some(r)) => {
                let r2 = var_map.get(&r).copied().unwrap_or(r);
                cfg.add_edge(after_exit, Instr::Copy { dst: d, src: r2 }, to);
            }
            (Some(d), None) => cfg.add_edge(after_exit, Instr::Nullify { dst: d }, to),
            (None, _) => cfg.add_edge(after_exit, Instr::Nop, to),
        }
        Ok(())
    }
}

/// Rewrites an instruction's variables through the activation map.
fn remap_instr(
    instr: &Instr,
    out: &mut Program,
    map: &mut HashMap<VarId, VarId>,
    callee: MethodId,
    main: MethodId,
) -> Instr {
    let mut m = |v: VarId| -> VarId {
        if out.var(v).owner == Some(callee) {
            *map.entry(v).or_insert_with(|| out.duplicate_var_for(main, v))
        } else {
            v
        }
    };
    match instr {
        Instr::Nop => Instr::Nop,
        Instr::Copy { dst, src } => Instr::Copy { dst: m(*dst), src: m(*src) },
        Instr::Nullify { dst } => Instr::Nullify { dst: m(*dst) },
        Instr::Load { dst, base, field } => {
            Instr::Load { dst: m(*dst), base: m(*base), field: field.clone() }
        }
        Instr::Store { base, field, src } => {
            Instr::Store { base: m(*base), field: field.clone(), src: m(*src) }
        }
        Instr::New { dst, ty, site, args, at } => Instr::New {
            dst: m(*dst),
            ty: *ty,
            site: *site,
            args: args.iter().map(|&a| m(a)).collect(),
            at: at.clone(),
        },
        Instr::CallComponent { dst, recv, method, args, known, at } => Instr::CallComponent {
            dst: dst.map(&mut m),
            recv: m(*recv),
            method: method.clone(),
            args: args.iter().map(|&a| m(a)).collect(),
            known: *known,
            at: at.clone(),
        },
        Instr::CallClient { .. } => {
            unreachable!("client calls are inlined before remapping")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp() -> canvas_easl::Spec {
        canvas_easl::builtin::cmp()
    }

    #[test]
    fn inline_simple_call() {
        let p = Program::parse(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        grow(s);
        i.next();
    }
    static void grow(Set x) { x.add("y"); }
}
"#,
            &cmp(),
        )
        .unwrap();
        let inlined = inline_main(&p, 10_000).unwrap();
        let main = inlined.main_method().unwrap();
        assert!(
            !main.cfg.edges().iter().any(|e| matches!(e.instr, Instr::CallClient { .. })),
            "all client calls inlined"
        );
        // the callee's add() call is now inside main's CFG
        let adds = main
            .cfg
            .edges()
            .iter()
            .filter(|e| matches!(&e.instr, Instr::CallComponent { method, .. } if method == "add"))
            .count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn two_sites_get_distinct_activations() {
        let p = Program::parse(
            r#"
class Main {
    static void main() {
        Set a = new Set();
        Set b = new Set();
        use(a);
        use(b);
    }
    static void use(Set x) { Iterator t = x.iterator(); t.next(); }
}
"#,
            &cmp(),
        )
        .unwrap();
        let inlined = inline_main(&p, 10_000).unwrap();
        let main = inlined.main_method().unwrap();
        // two iterator() calls with *different* destination variables
        let mut dsts = Vec::new();
        for e in main.cfg.edges() {
            if let Instr::CallComponent { method, dst, .. } = &e.instr {
                if method == "iterator" {
                    dsts.push(dst.expect("iterator binds its result"));
                }
            }
        }
        assert_eq!(dsts.len(), 2);
        assert_ne!(dsts[0], dsts[1], "activations must not share locals");
    }

    #[test]
    fn recursion_is_rejected() {
        let p = Program::parse(
            r#"
class Main {
    static void main() { ping(); }
    static void ping() { pong(); }
    static void pong() { if (true) { ping(); } }
}
"#,
            &cmp(),
        )
        .unwrap();
        let err = inline_main(&p, 10_000).unwrap_err();
        assert!(err.to_string().contains("recursive"), "{err}");
    }

    #[test]
    fn returned_values_flow() {
        let p = Program::parse(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = open(s);
        i.next();
    }
    static Iterator open(Set x) { return x.iterator(); }
}
"#,
            &cmp(),
        )
        .unwrap();
        let inlined = inline_main(&p, 10_000).unwrap();
        let main = inlined.main_method().unwrap();
        // the return slot copy lands in main: a Copy into `i` from a
        // re-homed `$ret` variable
        let has_ret_copy = main.cfg.edges().iter().any(|e| {
            matches!(&e.instr, Instr::Copy { src, .. }
                if inlined.var(*src).name.starts_with("$ret"))
        });
        assert!(has_ret_copy, "return value must be copied to the call's dst");
        // end-to-end precision of the inlined program is asserted in the
        // workspace integration tests (tests/inline_tvla.rs)
    }
}
