//! The mini-Java abstract syntax tree (pre-lowering).

use canvas_logic::TypeName;

use crate::ir::Span;

/// A class declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct ClassDecl {
    /// Class name.
    pub name: TypeName,
    /// Instance fields.
    pub fields: Vec<FieldDecl>,
    /// Static fields (treated as global variables by the analyses).
    pub statics: Vec<FieldDecl>,
    /// Methods, including constructors under the name `<init>`.
    pub methods: Vec<MethodDecl>,
    /// Declaration position.
    pub span: Span,
}

/// A field declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Declared type (component, client, or opaque like `Object`).
    pub ty: TypeName,
    /// Declaration position.
    pub span: Span,
}

/// A method declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct MethodDecl {
    /// Method name (`<init>` for constructors).
    pub name: String,
    /// Whether the method is `static`.
    pub is_static: bool,
    /// Parameters as (name, type).
    pub params: Vec<(String, TypeName)>,
    /// Declared return type (`None` for `void`).
    pub ret_ty: Option<TypeName>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Declaration position.
    pub span: Span,
    /// Line of the body's closing brace.
    pub end_line: u32,
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `T x;` or `T x = e;`
    VarDecl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: TypeName,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source position.
        span: Span,
    },
    /// `lhs = e;`
    Assign {
        /// Assigned location.
        lhs: LValue,
        /// Assigned value.
        rhs: Expr,
        /// Source position.
        span: Span,
    },
    /// An expression evaluated for effect, e.g. a call.
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source position.
        span: Span,
    },
    /// `if (cond) { … } else { … }` — the condition is kept only for the
    /// component calls it contains; the branch itself is nondeterministic.
    If {
        /// Component-relevant expressions evaluated by the condition.
        cond_effects: Vec<Expr>,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        els: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
    /// `while (cond) { … }` — condition handled as in [`Stmt::If`]; its
    /// effects are evaluated before every iteration test.
    While {
        /// Component-relevant expressions evaluated by the condition.
        cond_effects: Vec<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
    /// `return;` or `return e;`
    Return {
        /// Returned value.
        value: Option<Expr>,
        /// Source position.
        span: Span,
    },
    /// A statement sequence with no branching (used by the `for` desugar to
    /// splice the init statement before the loop).
    Block(Vec<Stmt>),
}

/// An assignable location.
#[derive(Clone, PartialEq, Debug)]
pub enum LValue {
    /// A local variable, parameter, or (possibly unqualified) static field.
    Var(String),
    /// `base.field`; chained bases are flattened via temporaries during
    /// lowering.
    Field {
        /// The base expression (`this` allowed).
        base: Box<Expr>,
        /// The stored-to field.
        field: String,
    },
}

/// An expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A variable reference (`x`, `this`, or an unqualified static).
    Var(String),
    /// `base.field` — reading a field.
    FieldGet {
        /// Base expression.
        base: Box<Expr>,
        /// Read field.
        field: String,
    },
    /// `new T(args)`.
    New {
        /// Allocated type.
        ty: TypeName,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Source position (identifies the allocation site).
        span: Span,
    },
    /// `recv.m(args)` or `m(args)` (implicit receiver / static call).
    Call {
        /// Receiver, if any.
        recv: Option<Box<Expr>>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position (identifies the call site).
        span: Span,
    },
    /// Anything the analyses do not track: literals, arithmetic, `null`, …
    Opaque,
}

impl Expr {
    /// Whether the expression is component-relevant (may produce or consume
    /// tracked references): everything except [`Expr::Opaque`].
    pub fn is_tracked(&self) -> bool {
        !matches!(self, Expr::Opaque)
    }
}
