//! Program-synthesis hooks for corpus generators.
//!
//! The fleet-scale corpus generator (`canvas-fleet`) materializes
//! thousands of mini-Java clients; this module owns the two pieces that
//! belong to the *language* rather than to any particular program family:
//!
//! * [`SourceBuilder`] — a line-tracking emitter. Generators need exact
//!   1-based line numbers for their ground truth ("the violation is the
//!   `next()` on line 17"), and hand-counting lines across nested blocks
//!   is exactly the kind of bookkeeping that silently rots. The builder
//!   owns indentation and brace matching and reports the line of every
//!   emitted statement.
//! * [`check_synthesized`] — the generator's self-check: parse the emitted
//!   source with the real frontend and summarize what the analyses will
//!   see (methods, CFG edges, component calls). A generator bug that
//!   emits unparsable text fails here, at generation time, instead of
//!   surfacing as a mysterious corpus-wide frontend error later.

use crate::{Instr, Program, SourceError};
use canvas_easl::Spec;

/// A line-tracking mini-Java source emitter.
///
/// Lines are 1-based, matching the frontend's spans. The builder is
/// append-only: `stmt` writes one statement line and returns its line
/// number, `open_block`/`close_block` manage nesting, and [`finish`]
/// closes the class body.
///
/// [`finish`]: SourceBuilder::finish
#[derive(Clone, Debug)]
pub struct SourceBuilder {
    out: String,
    next_line: u32,
    depth: usize,
}

impl SourceBuilder {
    /// Opens `class <name> {` on line 1.
    pub fn new(class: &str) -> SourceBuilder {
        let mut b = SourceBuilder { out: String::new(), next_line: 1, depth: 0 };
        b.raw(&format!("class {class} {{"));
        b.depth = 1;
        b
    }

    fn raw(&mut self, text: &str) -> u32 {
        for _ in 0..self.depth {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
        let line = self.next_line;
        self.next_line += 1;
        line
    }

    /// The line number the *next* emitted statement will land on.
    pub fn next_line(&self) -> u32 {
        self.next_line
    }

    /// Emits one statement line; returns its 1-based line number.
    pub fn stmt(&mut self, text: &str) -> u32 {
        self.raw(text)
    }

    /// Opens a braced block (`<head> {`): a method signature, an `if`, a
    /// loop header. Returns the header's line number.
    pub fn open_block(&mut self, head: &str) -> u32 {
        let line = self.raw(&format!("{head} {{"));
        self.depth += 1;
        line
    }

    /// Closes the innermost open block.
    pub fn close_block(&mut self) {
        self.depth = self.depth.saturating_sub(1);
        self.raw("}");
    }

    /// Closes every open block (including the class) and returns the
    /// finished source.
    pub fn finish(mut self) -> String {
        while self.depth > 0 {
            self.close_block();
        }
        self.out
    }
}

/// What the frontend sees in one synthesized program — the size
/// dimensions a corpus manifest records per entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SynthSummary {
    /// Client methods.
    pub methods: usize,
    /// CFG edges across all methods (the paper's `E` dimension).
    pub edges: usize,
    /// Component-method call sites (the conformance-relevant surface).
    pub component_calls: usize,
}

/// Parses a synthesized source with the real frontend and summarizes it.
///
/// # Errors
///
/// The frontend's own parse/lower error — a generator emitting unparsable
/// text is a generator bug, surfaced at generation time.
pub fn check_synthesized(source: &str, spec: &Spec) -> Result<SynthSummary, SourceError> {
    let program = Program::parse(source, spec)?;
    let mut edges = 0;
    let mut component_calls = 0;
    for m in program.methods() {
        edges += m.cfg.edges().len();
        component_calls +=
            m.cfg.edges().iter().filter(|e| matches!(e.instr, Instr::CallComponent { .. })).count();
    }
    Ok(SynthSummary { methods: program.methods().len(), edges, component_calls })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_lines_through_nesting() {
        let mut b = SourceBuilder::new("Main");
        assert_eq!(b.next_line(), 2);
        let m = b.open_block("static void main()");
        assert_eq!(m, 2);
        let decl = b.stmt("Set s = new Set();");
        assert_eq!(decl, 3);
        let branch = b.open_block("if (true)");
        assert_eq!(branch, 4);
        let inner = b.stmt("s.add(\"x\");");
        assert_eq!(inner, 5);
        b.close_block();
        let src = b.finish();
        assert_eq!(src.lines().count(), 8, "{src}");
        assert!(src.lines().nth(4).is_some_and(|l| l.contains("s.add")), "{src}");
        // the emitted source parses, and the summary sees the structure
        let spec = canvas_easl::builtin::cmp();
        let summary = check_synthesized(&src, &spec).expect("synthesized source parses");
        assert_eq!(summary.methods, 1);
        assert_eq!(summary.component_calls, 1, "s.add is the one component call site");
    }

    #[test]
    fn unparsable_synthesis_is_reported_at_generation_time() {
        let spec = canvas_easl::builtin::cmp();
        assert!(check_synthesized("class {", &spec).is_err());
    }
}
