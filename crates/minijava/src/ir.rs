//! The lowered intermediate representation: variables, instructions, CFGs.

use std::collections::HashMap;
use std::fmt;

use canvas_easl::Spec;
use canvas_logic::TypeName;

use crate::ast::ClassDecl;
use crate::SourceError;

/// Index of a variable in the program-wide variable table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub usize);

/// Index of a method in the program's method table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MethodId(pub usize);

/// Index of a CFG node within one method.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub usize);

/// Identifies one allocation expression in the source.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AllocSite(pub u32);

/// A source position: 1-based line and column.
///
/// Columns are byte-based (the accepted surface syntax is ASCII-only). A
/// column of 0 means "unknown" — e.g. synthetic code with no source text.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (0 = unknown).
    pub col: u32,
}

impl Span {
    /// Creates a span at `line:col`.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A program point used in reports: method plus source span.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Site {
    /// The enclosing method.
    pub method: MethodId,
    /// Source position (line and column).
    pub span: Span,
    /// Human-readable description, e.g. `i.next()`.
    pub what: String,
}

impl Site {
    /// 1-based source line (shorthand for `span.line`).
    pub fn line(&self) -> u32 {
        self.span.line
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.span.line, self.what)
    }
}

/// What kind of storage a [`Variable`] is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VarKind {
    /// A method parameter (with its index; `this` is parameter 0 of
    /// instance methods).
    Param(usize),
    /// A local variable.
    Local,
    /// A compiler-introduced temporary.
    Temp,
    /// A static field (global; `owner` is `None`).
    Static,
    /// The synthetic per-method return-value slot.
    Ret,
}

/// A variable in the program-wide table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Variable {
    /// Unique id (index into [`Program::vars`]).
    pub id: VarId,
    /// Name; statics are qualified (`Main.worklist`), temps are `$tN`.
    pub name: String,
    /// Declared type.
    pub ty: TypeName,
    /// The owning method, or `None` for statics.
    pub owner: Option<MethodId>,
    /// Storage kind.
    pub kind: VarKind,
}

/// A three-address instruction, carried on a CFG edge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Instr {
    /// `dst = src` (reference copy).
    Copy {
        /// Destination variable.
        dst: VarId,
        /// Source variable.
        src: VarId,
    },
    /// `dst = new T(args)` — allocation. For client classes with a declared
    /// constructor the lowering emits a separate [`Instr::CallClient`] to
    /// `<init>`; for component classes the constructor effect is part of the
    /// derived method abstraction of this form.
    New {
        /// Destination variable.
        dst: VarId,
        /// Allocated type.
        ty: TypeName,
        /// Allocation site.
        site: AllocSite,
        /// Constructor arguments (component classes only).
        args: Vec<VarId>,
        /// Program point.
        at: Site,
    },
    /// `dst = base.field` (client-class field read).
    Load {
        /// Destination variable.
        dst: VarId,
        /// Base variable.
        base: VarId,
        /// Read field.
        field: String,
    },
    /// `base.field = src` (client-class field write).
    Store {
        /// Base variable.
        base: VarId,
        /// Written field.
        field: String,
        /// Source variable.
        src: VarId,
    },
    /// `[dst =] recv.m(args)` where `recv` has a component type.
    CallComponent {
        /// Destination for the returned reference, if bound.
        dst: Option<VarId>,
        /// Receiver.
        recv: VarId,
        /// Component method name.
        method: String,
        /// Arguments (only reference-typed ones are kept).
        args: Vec<VarId>,
        /// Whether the method exists in the specification (unknown methods
        /// are assumed effect- and requires-free).
        known: bool,
        /// Program point (the paper's `requires` check sites).
        at: Site,
    },
    /// `[dst =] m(args)` — a call to another client method (static
    /// dispatch; the receiver, if any, is argument 0).
    CallClient {
        /// Destination for the returned reference, if bound.
        dst: Option<VarId>,
        /// Callee.
        callee: MethodId,
        /// Arguments, aligned with the callee's params (receiver first for
        /// instance methods).
        args: Vec<VarId>,
        /// Program point.
        at: Site,
    },
    /// `dst = null` or `dst = <opaque>` — destination no longer refers to a
    /// tracked object.
    Nullify {
        /// Destination variable.
        dst: VarId,
    },
    /// No effect (control-flow glue).
    Nop,
}

impl Instr {
    /// The destination variable this instruction writes, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Instr::Copy { dst, .. } | Instr::Load { dst, .. } | Instr::Nullify { dst } => {
                Some(*dst)
            }
            Instr::New { dst, .. } => Some(*dst),
            Instr::CallComponent { dst, .. } | Instr::CallClient { dst, .. } => *dst,
            Instr::Store { .. } | Instr::Nop => None,
        }
    }
}

/// A CFG edge: `from --instr--> to`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// The instruction executed along the edge.
    pub instr: Instr,
    /// Target node.
    pub to: NodeId,
}

/// A control-flow graph; instructions live on edges (as in TVP).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cfg {
    node_count: usize,
    edges: Vec<Edge>,
    entry: NodeId,
    exit: NodeId,
}

impl Cfg {
    /// Creates an empty CFG with fresh entry and exit nodes.
    pub fn new() -> Self {
        Cfg { node_count: 2, edges: Vec::new(), entry: NodeId(0), exit: NodeId(1) }
    }

    /// Allocates a fresh node.
    pub fn fresh_node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        id
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, from: NodeId, instr: Instr, to: NodeId) {
        self.edges.push(Edge { from, instr, to });
    }

    /// Entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// Exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing edges of `n`.
    pub fn succs(&self, n: NodeId) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.from == n)
    }
}

/// One lowered method.
#[derive(Clone, PartialEq, Debug)]
pub struct MethodIr {
    /// The method's id.
    pub id: MethodId,
    /// Declaring class.
    pub class: TypeName,
    /// Method name (`<init>` for constructors).
    pub name: String,
    /// Whether the method is static.
    pub is_static: bool,
    /// Parameter variables (`this` first for instance methods).
    pub params: Vec<VarId>,
    /// The synthetic return slot, if the method returns a reference.
    pub ret_var: Option<VarId>,
    /// The control-flow graph.
    pub cfg: Cfg,
    /// Position of the declaration (the return type / `static` keyword).
    pub span: Span,
    /// Line of the body's closing brace (the method covers
    /// `span.line..=end_line`).
    pub end_line: u32,
}

impl MethodIr {
    /// Fully qualified name, `Class.method`.
    pub fn qualified_name(&self) -> String {
        format!("{}.{}", self.class, self.name)
    }
}

/// A parsed and lowered mini-Java program.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    pub(crate) classes: Vec<ClassDecl>,
    pub(crate) vars: Vec<Variable>,
    pub(crate) methods: Vec<MethodIr>,
    pub(crate) component_types: Vec<TypeName>,
    pub(crate) scmp_shaped: bool,
}

impl Program {
    /// Parses and lowers a program against a component specification.
    ///
    /// # Errors
    ///
    /// Returns a [`SourceError`] on lexical/syntactic errors, unknown
    /// identifiers or types, arity mismatches, or unsupported constructs.
    pub fn parse(src: &str, spec: &Spec) -> Result<Program, SourceError> {
        // fault-injection point: under CANVAS_FAULT=truncate-input the
        // source is cut in half, which must surface as Err, never a panic
        let src = canvas_faults::truncate_input(src);
        crate::lower::parse_and_lower(src, spec)
    }

    /// The program-wide variable table.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// A variable by id.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.0]
    }

    /// All lowered methods.
    pub fn methods(&self) -> &[MethodIr] {
        &self.methods
    }

    /// A method by id.
    pub fn method(&self, id: MethodId) -> &MethodIr {
        &self.methods[id.0]
    }

    /// Looks up a method by `Class.name`.
    pub fn method_named(&self, qualified: &str) -> Option<&MethodIr> {
        self.methods.iter().find(|m| m.qualified_name() == qualified)
    }

    /// The `main` method (entry point), if declared.
    pub fn main_method(&self) -> Option<&MethodIr> {
        self.methods.iter().find(|m| m.name == "main" && m.is_static)
    }

    /// The typed class declarations (used by the heap baselines).
    pub fn classes(&self) -> &[ClassDecl] {
        &self.classes
    }

    /// The component types referenced by the program.
    pub fn component_types(&self) -> &[TypeName] {
        &self.component_types
    }

    /// Whether references to component objects are confined to locals,
    /// parameters and statics (the paper's S- prefix restriction, §4): no
    /// client field has a component type.
    pub fn is_scmp_shaped(&self) -> bool {
        self.scmp_shaped
    }

    /// Variables visible to `method`: its own params/locals/temps plus all
    /// statics, filtered to component types.
    pub fn component_vars_in_scope(&self, method: MethodId, spec: &Spec) -> Vec<VarId> {
        self.vars
            .iter()
            .filter(|v| {
                (v.owner == Some(method) || v.owner.is_none()) && spec.is_component_type(&v.ty)
            })
            .map(|v| v.id)
            .collect()
    }

    /// Count of static variables.
    pub fn static_vars(&self) -> impl Iterator<Item = &Variable> {
        self.vars.iter().filter(|v| v.owner.is_none())
    }

    /// Total number of CFG edges (the paper's `E`).
    pub fn edge_count(&self) -> usize {
        self.methods.iter().map(|m| m.cfg.edges().len()).sum()
    }

    /// Adds a *ghost* variable owned by `method` (used by the
    /// interprocedural analysis for entry-snapshot and phantom variables).
    /// Ghost variables are never assigned by any instruction.
    pub fn add_ghost_var(&mut self, method: MethodId, name: &str, ty: TypeName) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            id,
            name: name.to_string(),
            ty,
            owner: Some(method),
            kind: VarKind::Temp,
        });
        id
    }

    /// Clones variable `v` as a new variable owned by `owner` (used by the
    /// inliner to re-home callee variables into the inlined method).
    pub fn duplicate_var_for(&mut self, owner: MethodId, v: VarId) -> VarId {
        let src = self.vars[v.0].clone();
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            id,
            name: format!("{}#{}", src.name, id.0),
            ty: src.ty,
            owner: Some(owner),
            kind: src.kind,
        });
        id
    }

    /// Replaces a method's CFG (used by the inliner).
    pub fn replace_cfg(&mut self, method: MethodId, cfg: Cfg) {
        self.methods[method.0].cfg = cfg;
    }

    /// Builds the static call graph: for each method, the client methods it
    /// calls.
    pub fn call_graph(&self) -> HashMap<MethodId, Vec<MethodId>> {
        let mut out: HashMap<MethodId, Vec<MethodId>> = HashMap::new();
        for m in &self.methods {
            let mut callees = Vec::new();
            for e in m.cfg.edges() {
                if let Instr::CallClient { callee, .. } = &e.instr {
                    if !callees.contains(callee) {
                        callees.push(*callee);
                    }
                }
            }
            out.insert(m.id, callees);
        }
        out
    }
}

impl Default for Cfg {
    fn default() -> Self {
        Cfg::new()
    }
}
