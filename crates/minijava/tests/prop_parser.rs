//! Robustness fuzzing of the mini-Java frontend: arbitrary token soup must
//! produce a typed error, never a panic, and generated well-formed programs
//! must always parse.

use canvas_minijava::Program;
use proptest::prelude::*;

fn spec() -> canvas_easl::Spec {
    canvas_easl::builtin::cmp()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte strings never panic the lexer/parser/lowerer.
    #[test]
    fn garbage_never_panics(src in ".{0,200}") {
        let _ = Program::parse(&src, &spec());
    }

    /// Structured-ish token soup (keywords, idents, punctuation) never
    /// panics either — this explores deeper parser paths than raw bytes.
    #[test]
    fn token_soup_never_panics(toks in prop::collection::vec(
        prop_oneof![
            Just("class"), Just("static"), Just("void"), Just("if"), Just("else"),
            Just("while"), Just("for"), Just("return"), Just("new"), Just("true"),
            Just("Set"), Just("Iterator"), Just("Main"), Just("main"),
            Just("s"), Just("i"), Just("x"),
            Just("{"), Just("}"), Just("("), Just(")"), Just(";"), Just("."),
            Just(","), Just("="), Just("=="), Just("!="), Just("&&"), Just("||"),
            Just("\"str\""), Just("42"),
        ],
        0..60,
    )) {
        let src = toks.join(" ");
        let _ = Program::parse(&src, &spec());
    }

    /// Generated clients always parse and lower.
    #[test]
    fn generated_clients_always_parse(seed in 0u64..5_000) {
        // use the seed to vary both shape parameters and randomness
        let blocks = 1 + (seed % 5) as usize;
        let iters = 1 + (seed % 3) as usize;
        let g = canvas_suite_like_generator(blocks, iters, seed);
        let p = Program::parse(&g, &spec());
        prop_assert!(p.is_ok(), "{g}\n{:?}", p.err());
    }
}

/// A tiny local generator (the full ones live in canvas-suite; this avoids a
/// dev-dependency cycle) exercising declarations, branches, calls.
fn canvas_suite_like_generator(blocks: usize, iters: usize, seed: u64) -> String {
    let mut out = String::from("class Main {\n  static void main() {\n");
    for b in 0..blocks {
        out.push_str(&format!("    Set s{b} = new Set();\n"));
        for k in 0..iters {
            out.push_str(&format!("    Iterator i{b}_{k} = s{b}.iterator();\n"));
            if (seed + b as u64 + k as u64).is_multiple_of(2) {
                out.push_str(&format!("    i{b}_{k}.next();\n"));
            } else {
                out.push_str(&format!(
                    "    if (true) {{ s{b}.add(\"x\"); }} else {{ i{b}_{k}.next(); }}\n"
                ));
            }
        }
    }
    out.push_str("  }\n}\n");
    out
}
