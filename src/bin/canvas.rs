//! `canvas` — the command-line certifier.
//!
//! ```text
//! canvas derive  --spec <cmp|grp|imp|aop|PATH.easl> [--metrics] [--log-json PATH]
//! canvas certify --spec <...> [--engine <name>] [--whole-program|--inline]
//!                [--explain] [--trace-out PATH] [--metrics] [--log-json PATH]
//!                [--max-steps N] [--deadline-ms N]
//!                [--emit-cert PATH] CLIENT.mj
//! canvas check   --spec <...> [--metrics] [--log-json PATH] CERT CLIENT.mj
//! canvas serve   [--threads N] [--cache-dir DIR | --no-cache] [--log-json PATH]
//! canvas fleet gen --out DIR [--programs N] [--seed N] [--violation-rate R] [--force]
//! canvas fleet run --corpus DIR [--shards N] [--cache-dir DIR] [--report PATH]
//!                [--backend HOST:PORT]...
//! canvas engines
//! canvas specs
//! ```
//!
//! `--metrics` enables pipeline telemetry and prints a summary (counters,
//! timers) after the command's normal output. `--explain` records per-fact
//! provenance during the analysis and renders each violation as a
//! rustc-style labeled diagnostic with its witness trace. `--trace-out`
//! records solver/certification trace events and writes them as Chrome
//! Trace Format JSON (loadable in Perfetto / `chrome://tracing`).
//! `--log-json` streams the structured event log as `canvas-log/1`
//! newline-delimited JSON to a file (threshold lowered to `info`);
//! warnings and errors keep their stderr rendering either way.
//!
//! `--max-steps` and `--deadline-ms` bound the engine fixpoints through the
//! resource governor (`canvas-faults`): when a budget trips, the engine
//! degrades to an inconclusive verdict instead of running away.
//!
//! `certify --whole-program --emit-cert PATH` writes a proof-carrying
//! certificate: the engine's fixpoint solution in the versioned
//! `canvas-cert/1` byte-stable format, bound by digest to the exact client
//! source, spec, and derived abstraction. `canvas check CERT CLIENT.mj`
//! revalidates it with the engine-free `canvas-check` crate — single-pass
//! post-fixpoint replay, no fixpoint iteration, no engine code trusted —
//! and exits 0 (valid, certified), 1 (valid, violations confirmed), or
//! 2 (rejected: mutated, truncated, or inconsistent).
//!
//! `certify --whole-program --cache-dir DIR` certifies through the
//! content-addressed certificate cache: unchanged `(method, entry, engine)`
//! cells are answered from `DIR` instead of re-analysed. `canvas serve`
//! runs the long-lived certification daemon: newline-delimited JSON
//! requests on stdin, one response line each on stdout (see
//! `canvas_incr::service`), sharing one warm cache across concurrent
//! requests (default `.canvas-cache/`; `--no-cache` keeps it in memory).
//!
//! `canvas fleet gen` materializes a deterministic, seed-parameterized
//! synthetic corpus (with a `canvas-fleet-manifest/1` manifest recording
//! per-file fingerprints and ground truth); it refuses an existing output
//! directory without `--force`. `canvas fleet run` certifies a corpus
//! across sharded, work-stealing workers — in-process by default, or
//! against `canvas serve --listen` backends with `--backend` — merging the
//! per-shard certificate caches losslessly into `--cache-dir` at the end,
//! and prints the aggregated fleet report (`--report` also writes it as
//! `canvas-bench-fleet/1` JSON).
//!
//! Exit status: 0 = certified conformant, 1 = potential violations found,
//! 2 = usage/spec/client/engine error, 3 = analysis inconclusive (resource
//! budget exhausted before a verdict was reached; for `fleet run`, also any
//! poisoned program or dead shard).

use std::process::ExitCode;

use canvas_core::{CanvasError, Certifier, Engine, Stage};
use canvas_faults::Budget;
use canvas_incr::service::{load_spec, serve, ServeConfig};
use canvas_incr::store::CertCache;
use canvas_incr::IncrementalCertifier;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("canvas: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, CanvasError> {
    let mut it = args.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    match cmd {
        "engines" => {
            for e in canvas_core::registry() {
                println!(
                    "{:<26} {}",
                    e.name(),
                    if e.specialized() { "derived abstraction" } else { "generic baseline" }
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "derive" => {
            let opts = parse_opts(it.as_slice())?;
            canvas_telemetry::set_enabled(opts.metrics);
            init_log_json(opts.log_json.as_deref())?;
            let spec = load_spec(&opts.spec)?;
            println!("specification {} ({:?})", spec.name(), canvas_easl::classify(&spec));
            let certifier = Certifier::from_spec(spec)?;
            println!("derived instrumentation-predicate families:");
            for f in certifier.derived().families() {
                println!("  {f}");
            }
            let stats = certifier.derived().stats();
            println!(
                "derivation: {} WP computations, {} equivalence checks, converged in {} rounds",
                stats.wp_count,
                stats.equiv_checks,
                stats.families_discovered.len()
            );
            if opts.metrics {
                print!("{}", canvas_telemetry::snapshot());
            }
            Ok(ExitCode::SUCCESS)
        }
        "certify" => {
            let opts = parse_opts(it.as_slice())?;
            canvas_telemetry::set_enabled(opts.metrics);
            init_log_json(opts.log_json.as_deref())?;
            canvas_telemetry::trace::set_tracing(opts.trace_out.is_some());
            let client_path = opts
                .client
                .as_deref()
                .ok_or_else(|| CanvasError::usage("certify needs a client file argument"))?;
            let source = std::fs::read_to_string(client_path)
                .map_err(|e| CanvasError::io(Stage::ClientFrontend, client_path, &e))?;
            let spec = load_spec(&opts.spec)?;
            let certifier =
                Certifier::from_spec(spec)?.with_explain(opts.explain).with_budget(opts.budget);
            let program = {
                let _parse_phase = canvas_telemetry::phase::PARSE.span();
                canvas_minijava::Program::parse(&source, certifier.spec())
                    .map_err(|e| CanvasError::client(&e))?
            };
            if opts.emit_cert.is_some() && !opts.whole_program {
                return Err(CanvasError::usage("--emit-cert requires --whole-program"));
            }
            let mut certificate: Option<canvas_abstraction::Certificate> = None;
            let report = if opts.inline {
                certifier.certify_inlined(&program, opts.engine)?
            } else if let Some(dir) = &opts.cache_dir {
                if !opts.whole_program {
                    return Err(CanvasError::usage("--cache-dir requires --whole-program"));
                }
                let inc = IncrementalCertifier::new(
                    certifier,
                    CertCache::open(std::path::Path::new(dir)),
                );
                let (report, stats) = if opts.emit_cert.is_some() {
                    let (report, cert, stats) = inc
                        .certify_program_certified(&source, &program, opts.engine)
                        .map_err(CanvasError::from)?;
                    certificate = Some(cert);
                    (report, stats)
                } else {
                    inc.certify_program_cached_with_stats(&program, opts.engine)
                        .map_err(CanvasError::from)?
                };
                inc.persist()?;
                eprintln!(
                    "canvas: certificate cache: {} hit(s), {} miss(es)",
                    stats.hits, stats.misses
                );
                report
            } else if opts.whole_program {
                if opts.emit_cert.is_some() {
                    let (report, cert) =
                        certifier.certify_with_certificate(&source, &program, opts.engine)?;
                    certificate = Some(cert);
                    report
                } else {
                    certifier.certify_program(&program, opts.engine)?
                }
            } else {
                certifier.certify(&program, opts.engine)?
            };
            if opts.explain {
                print!("{}", report.render_explained(client_path, &source));
            } else {
                print!("{report}");
            }
            if opts.metrics {
                print!("{}", canvas_telemetry::snapshot());
            }
            if let Some(path) = &opts.trace_out {
                let json = canvas_telemetry::trace::export_chrome_json();
                std::fs::write(path, &json).map_err(|e| CanvasError::io(Stage::Cli, path, &e))?;
                eprintln!("canvas: wrote trace to {path}");
            }
            if let Some(path) = &opts.emit_cert {
                let cert = certificate
                    .as_ref()
                    .ok_or_else(|| CanvasError::usage("--emit-cert requires --whole-program"))?;
                std::fs::write(path, cert.to_text())
                    .map_err(|e| CanvasError::io(Stage::Cli, path, &e))?;
                eprintln!(
                    "canvas: wrote certificate to {path} ({}checkable, {} cell(s))",
                    if cert.checkable() { "" } else { "not " },
                    cert.cells.len()
                );
            }
            Ok(if report.is_inconclusive() {
                ExitCode::from(3)
            } else if report.certified() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "check" => {
            let mut spec_name = "cmp".to_string();
            let mut metrics = false;
            let mut log_json: Option<String> = None;
            let mut positional: Vec<&str> = Vec::new();
            let mut it = it.clone();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--spec" => {
                        spec_name = it
                            .next()
                            .ok_or_else(|| CanvasError::usage("--spec needs a value"))?
                            .clone();
                    }
                    "--metrics" => metrics = true,
                    "--log-json" => {
                        log_json = Some(
                            it.next()
                                .ok_or_else(|| CanvasError::usage("--log-json needs a path"))?
                                .clone(),
                        );
                    }
                    other if other.starts_with("--") => {
                        return Err(CanvasError::usage(format!("unknown check option {other:?}")));
                    }
                    other => positional.push(other),
                }
            }
            canvas_telemetry::set_enabled(metrics);
            init_log_json(log_json.as_deref())?;
            let [cert_path, client_path] = positional[..] else {
                return Err(CanvasError::usage("check needs CERT and CLIENT.mj arguments"));
            };
            let cert_text = std::fs::read_to_string(cert_path)
                .map_err(|e| CanvasError::io(Stage::Cli, cert_path, &e))?;
            let source = std::fs::read_to_string(client_path)
                .map_err(|e| CanvasError::io(Stage::ClientFrontend, client_path, &e))?;
            let spec = load_spec(&spec_name)?;
            // Re-deriving the abstraction from the spec is part of the trusted
            // recomputation: the certificate's digests are compared against
            // what *this* binary derives, not against what the emitter claims.
            let certifier = Certifier::from_spec(spec)?;
            // `canvas-check` is the engine-free trusted base and carries no
            // telemetry dependency, so the replay phase is timed here at the
            // call site instead.
            let outcome = {
                let _replay_phase = canvas_telemetry::phase::CHECK_REPLAY.span();
                canvas_check::check_text(&source, certifier.spec(), certifier.derived(), &cert_text)
            };
            let code = match outcome {
                Ok(outcome) => {
                    let s = &outcome.stats;
                    if outcome.certified {
                        println!(
                            "certificate valid: {client_path} certified conformant with {}",
                            certifier.spec().name()
                        );
                    } else {
                        println!(
                            "certificate valid: {} potential violation(s) confirmed",
                            outcome.violations.len()
                        );
                        for v in &outcome.violations {
                            println!(
                                "  {}:{}:{} {} in {}",
                                client_path, v.line, v.col, v.what, v.method
                            );
                        }
                    }
                    eprintln!(
                        "canvas: replayed {} cell(s), {} edge(s), {} transfer(s)",
                        s.cells, s.edges_replayed, s.transfers
                    );
                    if outcome.certified {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => {
                    canvas_telemetry::events::error(
                        "canvas.check",
                        format!("certificate rejected: {e}"),
                    );
                    ExitCode::from(2)
                }
            };
            if metrics {
                print!("{}", canvas_telemetry::snapshot());
            }
            Ok(code)
        }
        "specs" => {
            let mut specs = canvas_easl::builtin::all();
            specs.push(canvas_easl::builtin::unbounded());
            println!("{:<12} {:<20} {:<8} {:<8} derivation", "name", "class", "classes", "methods");
            for spec in &specs {
                let class = canvas_easl::classify(spec);
                println!(
                    "{:<12} {:<20} {:<8} {:<8} {}",
                    spec.name(),
                    format!("{class:?}"),
                    spec.classes().len(),
                    spec.classes().iter().map(|c| c.methods().len()).sum::<usize>(),
                    if class.derivation_terminates() {
                        "guaranteed to terminate"
                    } else {
                        "budgeted (no termination guarantee)"
                    }
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "serve" => {
            let mut workers = canvas_suite::worker_count(usize::MAX);
            let mut cache_dir = Some(".canvas-cache".to_string());
            let mut log_json: Option<String> = None;
            let mut listen: Option<String> = None;
            let mut config = ServeConfig::default();
            let mut it = it.clone();
            let parse_u64 = |flag: &str, n: &String| -> Result<u64, CanvasError> {
                n.parse().map_err(|_| CanvasError::usage(format!("{flag}: not a number: {n:?}")))
            };
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--log-json" => {
                        log_json = Some(
                            it.next()
                                .ok_or_else(|| CanvasError::usage("--log-json needs a path"))?
                                .clone(),
                        );
                    }
                    "--threads" => {
                        let n = it
                            .next()
                            .ok_or_else(|| CanvasError::usage("--threads needs a number"))?;
                        workers = n.parse().map_err(|_| {
                            CanvasError::usage(format!("--threads: not a number: {n:?}"))
                        })?;
                        if workers == 0 {
                            return Err(CanvasError::usage("--threads must be at least 1"));
                        }
                    }
                    "--cache-dir" => {
                        cache_dir = Some(
                            it.next()
                                .ok_or_else(|| CanvasError::usage("--cache-dir needs a path"))?
                                .clone(),
                        );
                    }
                    "--no-cache" => cache_dir = None,
                    "--listen" => {
                        listen = Some(
                            it.next()
                                .ok_or_else(|| CanvasError::usage("--listen needs HOST:PORT"))?
                                .clone(),
                        );
                    }
                    "--cache-bytes" => {
                        let n = it
                            .next()
                            .ok_or_else(|| CanvasError::usage("--cache-bytes needs a size"))?;
                        config.cache_bytes = Some(parse_byte_size(n)?);
                    }
                    "--queue" => {
                        let n =
                            it.next().ok_or_else(|| CanvasError::usage("--queue needs a size"))?;
                        config.queue_cap = parse_u64("--queue", n)?.max(1) as usize;
                    }
                    "--tenant-burst" => {
                        let n = it
                            .next()
                            .ok_or_else(|| CanvasError::usage("--tenant-burst needs a count"))?;
                        config.tenant_burst = parse_u64("--tenant-burst", n)?;
                    }
                    "--tenant-rate" => {
                        let n = it
                            .next()
                            .ok_or_else(|| CanvasError::usage("--tenant-rate needs a rate"))?;
                        config.tenant_rate = parse_u64("--tenant-rate", n)?;
                    }
                    "--deadline-ms" => {
                        let n = it
                            .next()
                            .ok_or_else(|| CanvasError::usage("--deadline-ms needs a number"))?;
                        config.default_deadline_ms = Some(parse_u64("--deadline-ms", n)?);
                    }
                    "--write-timeout-ms" => {
                        let n = it.next().ok_or_else(|| {
                            CanvasError::usage("--write-timeout-ms needs a number")
                        })?;
                        config.write_timeout_ms = parse_u64("--write-timeout-ms", n)?.max(1);
                    }
                    "--max-line-bytes" => {
                        let n = it
                            .next()
                            .ok_or_else(|| CanvasError::usage("--max-line-bytes needs a size"))?;
                        config.max_line_bytes = parse_byte_size(n)?.max(1) as usize;
                    }
                    other => {
                        return Err(CanvasError::usage(format!("unknown serve option {other:?}")))
                    }
                }
            }
            init_log_json(log_json.as_deref())?;
            config.workers = workers;
            config.cache_dir = cache_dir.map(std::path::PathBuf::from);
            if let Some(addr) = listen {
                canvas_conformance::incr::net::serve_listen(addr.as_str(), &config)?;
            } else {
                let stdin = std::io::stdin();
                serve(stdin.lock(), std::io::stdout(), &config)?;
            }
            canvas_telemetry::events::close_file();
            Ok(ExitCode::SUCCESS)
        }
        "fleet" => fleet(it.as_slice()),
        _ => {
            println!(
                "usage:\n  canvas derive  --spec <cmp|grp|imp|aop|PATH.easl> [--metrics] \
                 [--log-json PATH]\n  \
                 canvas certify --spec <...> [--engine <name>] [--whole-program|--inline] \
                 [--explain] [--trace-out PATH] [--metrics] [--log-json PATH] \
                 [--max-steps N] [--deadline-ms N] [--cache-dir DIR] \
                 [--emit-cert PATH] CLIENT.mj\n  \
                 canvas check   --spec <...> [--metrics] [--log-json PATH] CERT CLIENT.mj\n  \
                 canvas serve   [--listen HOST:PORT] [--threads N] [--queue N] \
                 [--cache-dir DIR | --no-cache] [--cache-bytes N[k|m|g]] \
                 [--tenant-burst N] [--tenant-rate N] [--deadline-ms N] \
                 [--write-timeout-ms N] [--max-line-bytes N[k|m|g]] \
                 [--log-json PATH]\n  \
                 canvas fleet gen --out DIR [--programs N] [--seed N] [--max-methods N] \
                 [--max-loop-depth N] [--violation-rate R] [--threads N] [--force]\n  \
                 canvas fleet run --corpus DIR [--shards N] [--engine <name>] [--spec <name>] \
                 [--cache-dir DIR] [--report PATH] [--backend HOST:PORT]...\n  \
                 canvas engines\n  \
                 canvas specs"
            );
            Ok(ExitCode::from(2))
        }
    }
}

/// The `canvas fleet` verb: `gen` materializes a seeded synthetic corpus,
/// `run` certifies a corpus across sharded workers (local process pool or
/// `canvas serve --listen` backends) with merged certificate caches.
fn fleet(args: &[String]) -> Result<ExitCode, CanvasError> {
    use canvas_fleet::{driver, gen, manifest};
    let mut it = args.iter();
    let sub = it.next().map(String::as_str).unwrap_or("");
    let need = |flag: &str, v: Option<&String>| -> Result<String, CanvasError> {
        v.cloned().ok_or_else(|| CanvasError::usage(format!("{flag} needs a value")))
    };
    let parse_usize = |flag: &str, n: &str| -> Result<usize, CanvasError> {
        n.parse().map_err(|_| CanvasError::usage(format!("{flag}: not a number: {n:?}")))
    };
    match sub {
        "gen" => {
            let mut out: Option<String> = None;
            let mut params = gen::GenParams::default();
            let mut threads: Option<usize> = None;
            let mut force = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => out = Some(need("--out", it.next())?),
                    "--programs" => {
                        params.programs =
                            parse_usize("--programs", &need("--programs", it.next())?)?;
                    }
                    "--seed" => {
                        let n = need("--seed", it.next())?;
                        params.seed = n.parse().map_err(|_| {
                            CanvasError::usage(format!("--seed: not a number: {n:?}"))
                        })?;
                    }
                    "--max-methods" => {
                        params.max_methods =
                            parse_usize("--max-methods", &need("--max-methods", it.next())?)?;
                    }
                    "--max-loop-depth" => {
                        params.max_loop_depth =
                            parse_usize("--max-loop-depth", &need("--max-loop-depth", it.next())?)?;
                    }
                    "--violation-rate" => {
                        let n = need("--violation-rate", it.next())?;
                        params.violation_rate = n.parse().map_err(|_| {
                            CanvasError::usage(format!("--violation-rate: not a number: {n:?}"))
                        })?;
                        if !(0.0..=1.0).contains(&params.violation_rate) {
                            return Err(CanvasError::usage("--violation-rate must be in [0, 1]"));
                        }
                    }
                    "--threads" => {
                        threads =
                            Some(parse_usize("--threads", &need("--threads", it.next())?)?.max(1));
                    }
                    "--force" => force = true,
                    other => {
                        return Err(CanvasError::usage(format!(
                            "unknown fleet gen option {other:?}"
                        )))
                    }
                }
            }
            let out = out.ok_or_else(|| CanvasError::usage("fleet gen needs --out DIR"))?;
            let programs = match threads {
                Some(t) => gen::generate_with_threads(&params, t)?,
                None => gen::generate(&params)?,
            };
            let m = manifest::Manifest::from_programs(&params, &programs);
            manifest::write_corpus(std::path::Path::new(&out), &m, &programs, force)?;
            println!("fleet gen: {} programs (seed {}) -> {out}", programs.len(), params.seed);
            println!("  manifest digest: {}", m.digest);
            Ok(ExitCode::SUCCESS)
        }
        "run" => {
            let mut corpus: Option<String> = None;
            let mut shards = canvas_suite::worker_count(usize::MAX);
            let mut engine = Engine::ScmpFds;
            let mut spec_name: Option<String> = None;
            let mut cache_dir: Option<String> = None;
            let mut report_path: Option<String> = None;
            let mut backends: Vec<String> = Vec::new();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--corpus" => corpus = Some(need("--corpus", it.next())?),
                    "--shards" => {
                        shards = parse_usize("--shards", &need("--shards", it.next())?)?.max(1);
                    }
                    "--engine" => {
                        let name = need("--engine", it.next())?;
                        engine = Engine::by_name(&name).ok_or_else(|| {
                            CanvasError::usage(format!(
                                "unknown engine {name:?} (see `canvas engines`)"
                            ))
                        })?;
                    }
                    "--spec" => spec_name = Some(need("--spec", it.next())?),
                    "--cache-dir" => cache_dir = Some(need("--cache-dir", it.next())?),
                    "--report" => report_path = Some(need("--report", it.next())?),
                    "--backend" => backends.push(need("--backend", it.next())?),
                    other => {
                        return Err(CanvasError::usage(format!(
                            "unknown fleet run option {other:?}"
                        )))
                    }
                }
            }
            let corpus =
                corpus.ok_or_else(|| CanvasError::usage("fleet run needs --corpus DIR"))?;
            let (m, items) = manifest::load_corpus(std::path::Path::new(&corpus))?;
            let spec_name = spec_name.unwrap_or_else(|| m.spec.clone());
            let spec = load_spec(&spec_name)?;
            let cfg = driver::FleetConfig {
                shards,
                engine,
                spec,
                spec_name,
                cache_dir: cache_dir.map(std::path::PathBuf::from),
                backends,
                manifest_digest: Some(m.digest),
            };
            let report = driver::run_fleet(&items, &cfg)?;
            print!("{}", report.render());
            if let Some(path) = report_path {
                std::fs::write(&path, report.to_json().render())
                    .map_err(|e| CanvasError::io(Stage::Cli, &path, &e))?;
                eprintln!("canvas: fleet report written to {path}");
            }
            Ok(ExitCode::from(canvas_fleet::exit_code(&report)))
        }
        other => {
            Err(CanvasError::usage(format!("fleet needs a subcommand: gen or run (got {other:?})")))
        }
    }
}

/// Parses a byte size with an optional `k`/`m`/`g` suffix (powers of 1024).
fn parse_byte_size(s: &str) -> Result<u64, CanvasError> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'k' | b'K') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'm' | b'M') => (&s[..s.len() - 1], 1u64 << 20),
        Some(b'g' | b'G') => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| CanvasError::usage(format!("not a byte size: {s:?} (try 512k, 64m, 1g)")))?;
    n.checked_mul(mult).ok_or_else(|| CanvasError::usage(format!("byte size overflows: {s:?}")))
}

/// Arms the `canvas-log/1` NDJSON file sink and lowers the log threshold
/// to `Info` so routine lifecycle records land in the file; stderr keeps
/// echoing warnings and errors for TTY use.
fn init_log_json(path: Option<&str>) -> Result<(), CanvasError> {
    if let Some(path) = path {
        canvas_telemetry::events::log_to_file(std::path::Path::new(path))
            .map_err(|e| CanvasError::io(Stage::Cli, path, &e))?;
        canvas_telemetry::events::set_min_level(canvas_telemetry::events::Level::Info);
    }
    Ok(())
}

struct Opts {
    spec: String,
    engine: Engine,
    whole_program: bool,
    inline: bool,
    metrics: bool,
    explain: bool,
    trace_out: Option<String>,
    log_json: Option<String>,
    budget: Budget,
    cache_dir: Option<String>,
    emit_cert: Option<String>,
    client: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, CanvasError> {
    let mut opts = Opts {
        spec: "cmp".to_string(),
        engine: Engine::ScmpFds,
        whole_program: false,
        inline: false,
        metrics: false,
        explain: false,
        trace_out: None,
        log_json: None,
        budget: Budget::unlimited(),
        cache_dir: None,
        emit_cert: None,
        client: None,
    };
    fn usage(m: impl Into<String>) -> CanvasError {
        CanvasError::usage(m)
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spec" => {
                opts.spec = it.next().ok_or_else(|| usage("--spec needs a value"))?.clone();
            }
            "--engine" => {
                let name = it.next().ok_or_else(|| usage("--engine needs a value"))?;
                opts.engine = Engine::by_name(name).ok_or_else(|| {
                    usage(format!("unknown engine {name:?} (see `canvas engines`)"))
                })?;
            }
            "--whole-program" => opts.whole_program = true,
            "--inline" => opts.inline = true,
            "--metrics" => opts.metrics = true,
            "--explain" => opts.explain = true,
            "--trace-out" => {
                opts.trace_out =
                    Some(it.next().ok_or_else(|| usage("--trace-out needs a path"))?.clone());
            }
            "--log-json" => {
                opts.log_json =
                    Some(it.next().ok_or_else(|| usage("--log-json needs a path"))?.clone());
            }
            "--max-steps" => {
                let n = it.next().ok_or_else(|| usage("--max-steps needs a number"))?;
                let n: u64 =
                    n.parse().map_err(|_| usage(format!("--max-steps: not a number: {n:?}")))?;
                opts.budget = opts.budget.with_max_steps(n);
            }
            "--cache-dir" => {
                opts.cache_dir =
                    Some(it.next().ok_or_else(|| usage("--cache-dir needs a path"))?.clone());
            }
            "--emit-cert" => {
                opts.emit_cert =
                    Some(it.next().ok_or_else(|| usage("--emit-cert needs a path"))?.clone());
            }
            "--deadline-ms" => {
                let n = it.next().ok_or_else(|| usage("--deadline-ms needs a number"))?;
                let n: u64 =
                    n.parse().map_err(|_| usage(format!("--deadline-ms: not a number: {n:?}")))?;
                opts.budget = opts.budget.with_deadline_ms(n);
            }
            other if other.starts_with("--") => {
                return Err(usage(format!("unknown option {other:?}")));
            }
            other => {
                if opts.client.replace(other.to_string()).is_some() {
                    return Err(usage("more than one client file given"));
                }
            }
        }
    }
    Ok(opts)
}
