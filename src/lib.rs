//! `canvas-conformance` — a Rust reproduction of *"Deriving Specialized
//! Program Analyses for Certifying Component-Client Conformance"*
//! (Ramalingam, Warshavsky, Field, Goyal, Sagiv — PLDI 2002).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`easl`] — the EASL specification language and built-in FOS specs;
//! * [`minijava`] — the mini-Java client language;
//! * [`logic`] — formulas, Kleene values, small-model checks;
//! * [`wp`] — weakest preconditions and abstraction derivation (§4);
//! * [`abstraction`] — the boolean-program client transform (§4.3);
//! * [`dataflow`] — FDS / relational / interprocedural engines (§4, §8);
//! * [`tvla`] — the TVP IR and 3-valued-logic engine (§5);
//! * [`heap`] — the allocation-site baseline (§3);
//! * [`faults`] — resource budgets, graceful degradation, fault injection;
//! * [`core`] — the [`Certifier`] pipeline tying everything together;
//! * [`check`] — the independent certificate checker (engine-free trusted
//!   base) that revalidates proof-carrying certificates by replay;
//! * [`suite`] — the evaluation corpus and generators (§7);
//! * [`incr`] — incremental certification: the content-addressed
//!   certificate cache and the `canvas serve` protocol;
//! * [`fleet`] — fleet-scale corpus certification: the synthetic corpus
//!   generator, the sharded work-stealing driver, and merged certificate
//!   caches (`canvas fleet`).
//!
//! Start with [`Certifier`]:
//!
//! ```
//! use canvas_conformance::{Certifier, Engine};
//!
//! let certifier = Certifier::from_spec(canvas_conformance::easl::builtin::cmp())?;
//! let report = certifier.certify_source(
//!     "class Main { static void main() {
//!          Set s = new Set();
//!          Iterator i = s.iterator();
//!          i.next();
//!      } }",
//!     Engine::ScmpFds,
//! )?;
//! assert!(report.certified());
//! # Ok::<(), canvas_conformance::core::CertifyError>(())
//! ```

pub use canvas_abstraction as abstraction;
pub use canvas_check as check;
pub use canvas_core as core;
pub use canvas_dataflow as dataflow;
pub use canvas_easl as easl;
pub use canvas_faults as faults;
pub use canvas_fleet as fleet;
pub use canvas_heap as heap;
pub use canvas_incr as incr;
pub use canvas_logic as logic;
pub use canvas_minijava as minijava;
pub use canvas_suite as suite;
pub use canvas_telemetry as telemetry;
pub use canvas_tvla as tvla;
pub use canvas_wp as wp;

pub use canvas_core::{Certifier, CertifyError, Engine, Report, Violation};
